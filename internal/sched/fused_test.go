package sched

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"darknight/internal/field"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/nn"
)

// TestFusedFlightCount is the flight-count gate: DeepMLP has 7 bilinear
// layers in two fusable 3-layer runs plus a lone head, so a fused forward
// must cost exactly 3 gang flights where the per-layer path costs 7 — with
// the per-layer offload count (and the predictions) unchanged.
func TestFusedFlightCount(t *testing.T) {
	images := make([][]float64, 2)
	rng := rand.New(rand.NewSource(9))
	for i := range images {
		img := make([]float64, 64)
		for j := range img {
			img[j] = rng.Float64()
		}
		images[i] = img
	}
	run := func(fuse bool) ([]int, PhaseStats) {
		cfg := Config{VirtualBatch: 2, Collusion: 1, FuseBlocks: fuse, Seed: 1}
		model := nn.DeepMLP(1, 8, 8, 4, 12, rand.New(rand.NewSource(42)))
		trn, err := NewTrainer(cfg, model, gpu.NewHonestCluster(3), nil)
		if err != nil {
			t.Fatal(err)
		}
		preds, err := trn.Predict(images)
		if err != nil {
			t.Fatal(err)
		}
		return preds, trn.PhaseStats()
	}
	perPreds, per := run(false)
	fusedPreds, fused := run(true)
	for i := range perPreds {
		if perPreds[i] != fusedPreds[i] {
			t.Fatalf("image %d: fused class %d != per-layer %d", i, fusedPreds[i], perPreds[i])
		}
	}
	if per.Flights != 7 || per.Offloads != 7 {
		t.Fatalf("per-layer forward: %d flights / %d offloads, want 7/7", per.Flights, per.Offloads)
	}
	if fused.Flights != 3 {
		t.Fatalf("fused forward took %d flights, want 3 (two blocks + the head)", fused.Flights)
	}
	if fused.Offloads != 7 {
		t.Fatalf("fused forward measured %d offloads, want 7 (per-layer math unchanged)", fused.Offloads)
	}
	if fused.FusedBlocks != 2 || fused.FusedLayers != 6 {
		t.Fatalf("fused accounting: %d blocks / %d layers, want 2/6", fused.FusedBlocks, fused.FusedLayers)
	}
}

// TestFusedBlockMatchesPerLayer is the fused-offload equivalence gate:
// across K/E/slack operating points — raw shared cluster, fleet-managed
// gang grants, and the straggler-tolerant quorum path with a
// deterministically slow device — training DeepMLP with FuseBlocks must
// report the same losses and leave weights bit-identical to the per-layer
// dispatch, while spending strictly fewer gang flights on the same number
// of per-layer offloads.
func TestFusedBlockMatchesPerLayer(t *testing.T) {
	combos := []struct {
		name           string
		k, m, e, slack int
		slowSlot       int // -1 = no slow device
		fleetManaged   bool
	}{
		{name: "K2-M1-E0-cluster", k: 2, m: 1, e: 0, slowSlot: -1},
		{name: "K3-M1-E1-fleet", k: 3, m: 1, e: 1, slowSlot: -1, fleetManaged: true},
		{name: "K2-M1-E2-slack1-slow", k: 2, m: 1, e: 2, slack: 1, slowSlot: 2, fleetManaged: true},
	}
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			gang := c.k + c.m + c.e
			batch := trainData(4 * c.k)
			run := func(fuse bool) (*nn.Model, []float64, PhaseStats, *fleet.Manager) {
				cfg := Config{VirtualBatch: c.k, Collusion: c.m, Redundancy: c.e,
					StragglerSlack: c.slack, FuseBlocks: fuse, Seed: 1}
				devs := make([]gpu.Device, gang)
				for i := range devs {
					devs[i] = gpu.NewHonest(i)
					if i == c.slowSlot {
						devs[i] = gpu.NewSlow(devs[i], time.Millisecond)
					}
				}
				cluster := gpu.NewCluster(devs...)
				model := nn.DeepMLP(1, 8, 8, 4, 12, rand.New(rand.NewSource(42)))
				pipe, err := NewTrainPipeline(cfg, model, nil, "fm/", 2)
				if err != nil {
					t.Fatal(err)
				}
				defer pipe.Close()
				var src GangSource
				var fm *fleet.Manager
				if c.fleetManaged {
					fm = fleet.NewManager(cluster, fleet.Config{})
					src = &managerSource{m: fm, gang: gang}
				} else {
					src = SingleFleetSource{F: cluster}
				}
				opt := nn.NewSGD(0.05, 0.9)
				var losses []float64
				for step := 0; step < 2; step++ {
					loss, _, err := pipe.TrainLargeBatch(src, batch, opt, 0)
					if err != nil {
						t.Fatal(err)
					}
					losses = append(losses, loss)
				}
				return model, losses, pipe.PhaseStats(), fm
			}
			perModel, perLosses, perPS, _ := run(false)
			fusedModel, fusedLosses, fusedPS, fm := run(true)
			for i := range perLosses {
				if fusedLosses[i] != perLosses[i] {
					t.Fatalf("step %d: fused loss %v != per-layer %v", i, fusedLosses[i], perLosses[i])
				}
			}
			sameWeights(t, c.name, perModel, fusedModel)
			if fusedPS.FusedBlocks == 0 {
				t.Fatal("fused run dispatched no block flights")
			}
			if fusedPS.Offloads != perPS.Offloads {
				t.Fatalf("fused offloads %d != per-layer %d (the per-layer math must be unchanged)",
					fusedPS.Offloads, perPS.Offloads)
			}
			if fusedPS.Flights >= perPS.Flights {
				t.Fatalf("fused flights %d not fewer than per-layer %d", fusedPS.Flights, perPS.Flights)
			}
			if c.slack > 0 && c.slowSlot >= 0 {
				// The slow slot misses the first quorum of every block flight
				// (the trip pays its latency on the first job), so the fused
				// quorum gather must have left straggler marks — proof the
				// straggler-tolerant path ran fused, not wait-for-all.
				if st := fm.Stats(); st.StragglerEvents == 0 {
					t.Fatalf("slack combo never exercised the fused quorum path: %+v", st)
				}
			}
		})
	}
}

// blockSwapFleet is phaseSwapFleet with a block-flight surface: it counts
// every dispatch event — per-layer calls AND block flights — against
// nForward, then swaps to the backward fleet. It lets a fused training
// step run its forward on one gang grant and its backward on another.
type blockSwapFleet struct {
	fw, bw   Fleet
	nForward int
	calls    int
	swap     func()
}

func (f *blockSwapFleet) current() Fleet {
	if f.calls <= f.nForward {
		return f.fw
	}
	if f.swap != nil {
		f.swap()
		f.swap = nil
	}
	return f.bw
}

func (f *blockSwapFleet) Size() int { return f.fw.Size() }

func (f *blockSwapFleet) ForwardAll(key string, kernel gpu.LinearKernel, coded []field.Vec) ([]field.Vec, error) {
	f.calls++
	return f.current().ForwardAll(key, kernel, coded)
}

func (f *blockSwapFleet) BackwardAll(key string, kernel gpu.BilinearKernel, deltas []field.Vec) ([]field.Vec, error) {
	f.calls++
	return f.current().BackwardAll(key, kernel, deltas)
}

func (f *blockSwapFleet) BeginBlock(n int) (*gpu.BlockFlight, error) {
	f.calls++
	return f.current().(BlockFleet).BeginBlock(n)
}

// TestFusedBackwardCacheMissRefill quarantines a device between a fused
// step's forward and backward passes: every backward gather on the
// replacement gang — the per-layer head AND the layers inside the open
// block flights — misses its stored coded inputs, the engine refills the
// stores from the trace (the PR5 cache-miss machinery) and re-ships the
// equations down the still-open flight. The step must complete with
// weights bit-identical to an undisturbed per-layer run.
func TestFusedBackwardCacheMissRefill(t *testing.T) {
	cfg := Config{VirtualBatch: 2, Collusion: 1, Redundancy: 0, Seed: 3}
	const gang = 3
	batch := trainData(cfg.VirtualBatch)

	// Control: undisturbed per-layer serial run — doubles as one more
	// fused-vs-per-layer equivalence point.
	control := nn.DeepMLP(1, 8, 8, 4, 12, rand.New(rand.NewSource(42)))
	ctrlTrainer, err := NewTrainer(cfg, control, gpu.NewHonestCluster(gang), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrlLoss, _, err := ctrlTrainer.TrainLargeBatch(batch, nn.NewSGD(0.05, 0.9), 0)
	if err != nil {
		t.Fatal(err)
	}

	// Disturbed fused run: a 5-device fleet, gang of 3. DeepMLP's fused
	// forward is 3 dispatch events (two block flights + the per-layer
	// head); after them the first grant is released with slot 1 reported
	// faulty, and the whole backward walks a fresh gang.
	model := nn.DeepMLP(1, 8, 8, 4, 12, rand.New(rand.NewSource(42)))
	fcfg := cfg
	fcfg.FuseBlocks = true
	fm := fleet.NewManager(gpu.NewHonestCluster(gang+2), fleet.Config{ProbationProbability: -1})
	g1, err := fm.Acquire(context.Background(), "train", gang)
	if err != nil {
		t.Fatal(err)
	}
	sw := &blockSwapFleet{fw: g1, nForward: 3}
	sw.swap = func() {
		g1.ReportFaults([]int{1})
		g1.Release()
		g2, err := fm.Acquire(context.Background(), "train", gang)
		if err != nil {
			t.Fatal(err)
		}
		sw.bw = g2
	}

	pipe, err := NewTrainPipeline(fcfg, model, nil, "fmiss/", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pipe.Close()
	loss, _, err := pipe.TrainLargeBatch(SingleFleetSource{F: sw}, batch, nn.NewSGD(0.05, 0.9), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sw.bw != nil {
		if g, ok := sw.bw.(*fleet.Grant); ok {
			g.Release()
		}
	}
	if loss != ctrlLoss {
		t.Fatalf("disturbed fused loss %v != per-layer control %v", loss, ctrlLoss)
	}
	sameWeights(t, "fused-cache-miss-refill", control, model)
	// All 7 bilinear layers lost their stores with the gang, so all 7 must
	// have refilled — 6 of them mid-flight inside the two backward block
	// flights.
	if refills := pipe.CacheRefills(); refills != 7 {
		t.Fatalf("%d cache refills, want 7 (one per bilinear layer)", refills)
	}
	ps := pipe.PhaseStats()
	if ps.FusedBlocks != 4 {
		t.Fatalf("%d fused blocks, want 4 (two forward + two backward)", ps.FusedBlocks)
	}
	if st := fm.Stats(); st.QuarantineEvents == 0 {
		t.Fatalf("no quarantine recorded: %+v", st)
	}
}
