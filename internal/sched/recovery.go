package sched

import (
	"fmt"
	"sort"

	"darknight/internal/field"
	"darknight/internal/masking"
)

// This file implements the corrective action the paper explicitly leaves
// as future work (§4.4: "TEE may perform additional corrective action,
// such as executing on another GPU worker") — with Redundancy >= 2 the
// code can not only detect a tampered result but identify the culprit and
// decode from the remaining clean equations, so a single malicious GPU
// cannot stall training.

// RecoveryStats counts integrity events across a trainer's lifetime.
type RecoveryStats struct {
	Violations int // verification failures observed
	Recovered  int // decodes completed despite tampering
	BlamedGPUs []int
}

// EnableRecovery turns on audit-and-recover for forward offloads. It
// requires Redundancy >= 2 (attribution needs a second redundant
// equation).
func (t *Trainer) EnableRecovery() error {
	if t.cfg.Redundancy < 2 {
		return fmt.Errorf("sched: recovery needs Redundancy >= 2, have %d", t.cfg.Redundancy)
	}
	t.recover = true
	return nil
}

// Recovery returns the accumulated recovery statistics.
func (t *Trainer) Recovery() RecoveryStats { return t.recovery }

// recoverForward audits tampered results, identifies culprits and decodes
// the K true outputs from a clean column subset. It returns the decoded
// outputs or an error if attribution/recovery is impossible.
func (t *engine) recoverForward(code *masking.Code, results []field.Vec) ([]field.Vec, error) {
	culprits, err := code.AuditForward(results)
	if err != nil {
		return nil, fmt.Errorf("sched: integrity violation not recoverable: %w", err)
	}
	t.recovery.Violations++
	t.recovery.BlamedGPUs = mergeSorted(t.recovery.BlamedGPUs, culprits)
	t.stepCulprits = mergeSorted(t.stepCulprits, culprits)

	// Assemble a decode subset avoiding the culprits.
	bad := make(map[int]bool, len(culprits))
	for _, c := range culprits {
		bad[c] = true
	}
	var cols []int
	for j := 0; j < code.NumCoded() && len(cols) < code.S; j++ {
		if !bad[j] {
			cols = append(cols, j)
		}
	}
	if len(cols) < code.S {
		return nil, fmt.Errorf("sched: only %d clean equations, need %d", len(cols), code.S)
	}
	full, err := code.DecodeFull(results, cols)
	if err != nil {
		return nil, fmt.Errorf("sched: clean-subset decode failed: %w", err)
	}
	t.recovery.Recovered++
	t.recordIntegrity(culprits, true)
	return full[:code.K], nil
}

// recoverForwardSubset is recoverForward over a partial response set: the
// audit and the clean-subset decode are restricted to the responses that
// made the quorum. Attribution needs two present redundant equations, so
// recovery on the straggler path requires StragglerSlack <= E-2.
func (t *engine) recoverForwardSubset(code *masking.Code, results []field.Vec, present []bool) ([]field.Vec, error) {
	culprits, err := code.AuditForwardSubset(results, present)
	if err != nil {
		return nil, fmt.Errorf("sched: integrity violation not recoverable from quorum subset: %w", err)
	}
	t.recovery.Violations++
	t.recovery.BlamedGPUs = mergeSorted(t.recovery.BlamedGPUs, culprits)
	t.stepCulprits = mergeSorted(t.stepCulprits, culprits)

	bad := make(map[int]bool, len(culprits))
	for _, c := range culprits {
		bad[c] = true
	}
	var cols []int
	for j := 0; j < code.NumCoded() && len(cols) < code.S; j++ {
		if present[j] && !bad[j] {
			cols = append(cols, j)
		}
	}
	if len(cols) < code.S {
		return nil, fmt.Errorf("sched: only %d clean present equations, need %d", len(cols), code.S)
	}
	full, err := code.DecodeFull(results, cols)
	if err != nil {
		return nil, fmt.Errorf("sched: clean-subset decode failed: %w", err)
	}
	t.recovery.Recovered++
	t.recordIntegrity(culprits, true)
	return full[:code.K], nil
}

func mergeSorted(have, add []int) []int {
	seen := make(map[int]bool, len(have)+len(add))
	for _, v := range have {
		seen[v] = true
	}
	for _, v := range add {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
