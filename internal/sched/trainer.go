// Package sched is the DarKnight runtime: it orchestrates the §3.1 flow
// across the enclave, the masking code and the GPU cluster.
//
// Training one virtual batch of K examples (forward):
//
//  1. the TEE walks the model's layers with K per-example activations;
//  2. at every bilinear layer it quantizes the K inputs, encodes them into
//     S+E coded vectors (masking.Code), and fans them out to the GPUs;
//  3. GPUs run the layer's field kernel on their coded input (caching it
//     for the backward pass, §6) and return coded results;
//  4. the TEE optionally verifies integrity, decodes, restores floats,
//     adds the bias and continues;
//  5. non-linear layers (ReLU, MaxPool, BatchNorm, ...) run inside the TEE.
//
// Backward mirrors it with the Eq (4) coding: GPUs compute one gradient
// equation each against the coded inputs they stored during forward, and
// the TEE folds them with its secret γ into the exact batch gradient.
// Large batches aggregate ▽W across virtual batches with sealed eviction
// (Algorithm 2) in aggregate.go.
package sched

import (
	"fmt"
	"time"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/quant"
	"darknight/internal/tensor"
)

// Config selects the privacy/integrity operating point.
type Config struct {
	// VirtualBatch is K, the number of inputs coded together (2–6 in the
	// paper, bounded by SGX memory).
	VirtualBatch int
	// Collusion is M, the tolerated coalition size (defaults to 1).
	Collusion int
	// Redundancy is E, extra coded inputs for integrity (0 disables
	// verification; 1 is the paper's scheme).
	Redundancy int
	// FracBits is the fixed-point precision l (defaults to
	// quant.DefaultFracBits = 8).
	FracBits uint
	// NormLimit bounds |activation| before quantization via dynamic
	// max-abs normalization (the paper's VGG-style normalization).
	// <= 0 selects the default of 1.0.
	NormLimit float64
	// StragglerSlack lets a forward dispatch return before its slowest
	// devices: the decode proceeds once all but StragglerSlack coded
	// responses have arrived (the MDS property — any S of the S+E
	// responses decode exactly). At least one redundant equation is always
	// retained for verification, so the effective slack is
	// min(StragglerSlack, Redundancy-1); straggler tolerance therefore
	// requires Redundancy >= 2. 0 waits for every device. The quorum path
	// only engages on fleets implementing QuorumFleet.
	StragglerSlack int
	// FuseBlocks enables the fused-offload compile pass: maximal runs of
	// directly consecutive bilinear layers are grouped into blocks
	// (nn.CompileFusion) and each block is dispatched as a single gang
	// flight instead of one flight per layer, on fleets implementing
	// BlockFleet. The per-layer coding math — encode, verify, decode,
	// requantize — is unchanged at every layer boundary inside a block, so
	// fused outputs are bit-identical to the per-layer path; only the
	// flight machinery (lease handles, goroutine fan-out, device launch
	// latency) is amortized across the block.
	FuseBlocks bool
	// Seed drives all randomness (coding coefficients, noise).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.FracBits == 0 {
		c.FracBits = quant.DefaultFracBits
	}
	if c.NormLimit <= 0 {
		c.NormLimit = 1.0
	}
	if c.Collusion == 0 {
		c.Collusion = 1
	}
	return c
}

// Validate checks the configuration against a cluster size.
func (c Config) Validate(clusterSize int) error {
	p := c.maskParams()
	if err := p.Validate(); err != nil {
		return err
	}
	if p.GPUs() > clusterSize {
		return fmt.Errorf("sched: config needs K+M+E = %d GPUs, cluster has %d (paper rule K+M+1 <= K')",
			p.GPUs(), clusterSize)
	}
	return nil
}

func (c Config) maskParams() masking.Params {
	return masking.Params{K: c.VirtualBatch, M: c.Collusion, Redundancy: c.Redundancy}
}

// ErrIntegrity is returned (wrapped) when GPU results fail verification.
var ErrIntegrity = masking.ErrIntegrity

// Trainer drives private training of one model on one cluster. It is the
// forward engine plus everything training adds on top: the backward walk,
// gradient offload and Algorithm 2 aggregation.
type Trainer struct {
	engine
	// store seals per-virtual-batch gradient shards (Algorithm 2).
	store *gradStore
	// tracer, when non-nil, samples per-virtual-batch trace spans.
	tracer *obs.Tracer
}

// NewTrainer wires a trainer. The enclave may be nil, in which case memory
// accounting is skipped (used by small tests).
func NewTrainer(cfg Config, model *nn.Model, cluster *gpu.Cluster, encl *enclave.Enclave) (*Trainer, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(cluster.Size()); err != nil {
		return nil, err
	}
	return &Trainer{engine: newEngine(cfg, model, cluster, encl, ""), store: newGradStore(encl)}, nil
}

// Config returns the effective configuration.
func (t *Trainer) Config() Config { return t.cfg }

// Model returns the model under training.
func (t *Trainer) Model() *nn.Model { return t.model }

// PhaseStats returns the trainer's cumulative encode/dispatch/decode
// latency breakdown across forward AND backward offloads, plus Wall — the
// summed per-virtual-batch wall-clock, so Overlap() is meaningful on the
// training path (≈1.0 on this serial trainer).
func (t *Trainer) PhaseStats() PhaseStats { return t.phases }

// CacheRefills counts backward dispatches whose device-side coded-input
// cache had to be re-created from the trace (a device was replaced or
// reshuffled between the forward and backward passes).
func (t *Trainer) CacheRefills() int64 { return t.refills }

// SetObserver attaches a flight recorder: backward cache refills and
// integrity verdicts are recorded as they happen.
func (t *Trainer) SetObserver(rec *obs.FlightRecorder) { t.rec = rec }

// SetTracer attaches a sampling tracer: each sampled virtual batch
// (TrainVirtualBatch or Predict) produces a root span carrying its
// offload encode/dispatch/decode trees.
func (t *Trainer) SetTracer(tr *obs.Tracer) { t.tracer = tr }

// trace records one layer's forward pass for the backward walk.
type trace struct {
	layer    nn.Layer
	inputs   []*tensor.Tensor // per-example inputs to this layer
	children []*trace         // Sequential children, or Residual {body, skip}
	key      string           // GPU storage key (linear layers only)
	// noise holds the masking noise rows of this layer's forward encode
	// (training mode only): the one encode ingredient that cannot be
	// recomputed, kept so a backward cache miss can re-create the coded
	// inputs bit-identically (engine.refillStores).
	noise []field.Vec
	// blockLen, when > 1, marks this trace as the LAST layer of a fused
	// block of that depth: the backward walk over the parent Sequential's
	// children recognizes the run ending here and offloads its gradient
	// equations through one block flight (offloadBackwardBlock).
	blockLen int
}

// TrainVirtualBatch runs one masked forward+backward over exactly K
// examples, accumulating the SUMMED gradients into the model's params.
// Returns the mean loss. Callers average the grads and step the optimizer
// (see TrainLargeBatch).
func (t *Trainer) TrainVirtualBatch(examples []dataset.Example) (float64, error) {
	k := t.cfg.VirtualBatch
	if len(examples) != k {
		return 0, fmt.Errorf("sched: virtual batch needs exactly %d examples, got %d", k, len(examples))
	}
	t0 := time.Now()
	defer func() { t.phases.Wall += time.Since(t0) }()
	sp := t.tracer.Start("train.vbatch")
	t.sp = sp
	defer func() { t.sp = nil; sp.End() }()
	t.beginStep()
	code, err := masking.New(t.cfg.maskParams(), t.rng)
	if err != nil {
		return 0, err
	}
	xs := make([]*tensor.Tensor, k)
	for i := range examples {
		xs[i] = tensor.FromSlice(examples[i].Image, t.model.InShape...)
	}
	logits, tr, err := t.forwardLayer(code, t.model.Stack, xs, true)
	if err != nil {
		return 0, err
	}
	var total float64
	grads := make([]*tensor.Tensor, k)
	for i := range logits {
		loss, g := nn.SoftmaxCrossEntropy(logits[i], examples[i].Label)
		total += loss
		grads[i] = g
	}
	if _, err := t.backwardLayer(code, tr, grads); err != nil {
		return 0, err
	}
	return total / float64(k), nil
}

// Predict runs masked inference for a virtual batch of images, returning
// the predicted class per image. Forward-only — the inference flow the
// paper compares against Slalom (§7.2).
func (t *Trainer) Predict(images [][]float64) ([]int, error) {
	k := t.cfg.VirtualBatch
	if len(images) != k {
		return nil, fmt.Errorf("sched: predict needs exactly %d images, got %d", k, len(images))
	}
	t0 := time.Now()
	defer func() { t.phases.Wall += time.Since(t0) }()
	sp := t.tracer.Start("predict")
	t.sp = sp
	defer func() { t.sp = nil; sp.End() }()
	t.beginStep()
	code, err := masking.New(t.cfg.maskParams(), t.rng)
	if err != nil {
		return nil, err
	}
	xs := make([]*tensor.Tensor, k)
	for i := range images {
		xs[i] = tensor.FromSlice(images[i], t.model.InShape...)
	}
	logits, _, err := t.forwardLayer(code, t.model.Stack, xs, false)
	if err != nil {
		return nil, err
	}
	out := make([]int, k)
	for i := range logits {
		out[i] = nn.Argmax(logits[i])
	}
	return out, nil
}

// sharedNormFactor returns the common dynamic-normalization divisor for a
// set of tensors: max(1, max_i MaxAbs(x_i)/limit).
func sharedNormFactor(xs []*tensor.Tensor, limit float64) float64 {
	m := 0.0
	for _, x := range xs {
		if v := x.MaxAbs(); v > m {
			m = v
		}
	}
	f := m / limit
	if f < 1 {
		return 1
	}
	return f
}

func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// addBias adds a per-channel (conv) or per-element (dense) bias in place.
func addBias(y []float64, bias []float64, outShape []int) {
	if bias == nil {
		return
	}
	if len(bias) == len(y) {
		for i := range y {
			y[i] += bias[i]
		}
		return
	}
	// Conv layout: [C, H, W] with one bias per channel.
	plane := len(y) / len(bias)
	for c := range bias {
		b := bias[c]
		seg := y[c*plane : (c+1)*plane]
		for i := range seg {
			seg[i] += b
		}
	}
}
