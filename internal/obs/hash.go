package obs

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// HashWeights fingerprints a flat weight vector (FNV-1a over the IEEE-754
// bits, order-sensitive). Snapshots record it so replay can verify it
// rebuilt bit-identical model weights before comparing outputs.
func HashWeights(w []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range w {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		_, _ = h.Write(buf[:])
	}
	return fmt.Sprintf("fnv1a:%016x:%d", h.Sum64(), len(w))
}
