package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric series and renders them as Prometheus text
// exposition or JSON. Subsystems register either live instruments
// (Counter/Gauge/Histogram) or — the preferred pattern for code with
// existing in-process counters — closures (CounterFunc/GaugeFunc/
// SampleFunc) that read those counters at scrape time, leaving the hot
// paths untouched.
type Registry struct {
	mu      sync.Mutex
	order   []string
	metrics map[string]*series
}

// series is one registered metric family.
type series struct {
	name, help, typ string // typ: counter | gauge | histogram
	value           func() float64
	hist            *Histogram
	histVec         *HistogramVec
	samples         func() []Sample // labeled families
}

// Sample is one labeled observation emitted by a SampleFunc.
type Sample struct {
	Labels map[string]string
	Value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*series)}
}

func (r *Registry) register(s *series) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[s.name]; dup {
		panic("obs: duplicate metric registration: " + s.name)
	}
	r.metrics[s.name] = s
	r.order = append(r.order, s.name)
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one. Nil-safe.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (must be >= 0). Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers and returns a new counter. A nil registry returns
// nil; the nil counter's methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&series{name: name, help: help, typ: "counter", value: func() float64 { return float64(c.Value()) }})
	return c
}

// CounterFunc registers a monotone series computed at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&series{name: name, help: help, typ: "counter", value: fn})
}

// Gauge is a metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments by d. Nil-safe.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers and returns a new gauge. Nil registry returns nil.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.register(&series{name: name, help: help, typ: "gauge", value: g.Value})
	return g
}

// GaugeFunc registers a gauge computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&series{name: name, help: help, typ: "gauge", value: fn})
}

// SampleFunc registers a labeled family (e.g. per-tenant, per-device
// series) whose samples are produced at scrape time. typ is "counter" or
// "gauge".
func (r *Registry) SampleFunc(name, help, typ string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.register(&series{name: name, help: help, typ: typ, samples: fn})
}

// Histogram is a fixed-bucket cumulative histogram. Alongside the atomic
// bucket counts it keeps a small mutex-protected ring of the most recent
// raw observations, from which Quantile computes exact nearest-rank
// quantiles over the live window — the paper-faithful tail numbers the
// bucketed counts can only approximate.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated

	ringMu  sync.Mutex
	ring    []float64 // most recent observations, ringCap-bounded
	ringPos int
}

// histRingCap bounds the live-observation ring behind exact quantiles.
const histRingCap = 1024

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.ringMu.Lock()
	if len(h.ring) < histRingCap {
		h.ring = append(h.ring, v)
	} else {
		h.ring[h.ringPos] = v
		h.ringPos = (h.ringPos + 1) % histRingCap
	}
	h.ringMu.Unlock()
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Quantile returns the exact nearest-rank q-quantile (0 < q <= 1) over
// the live ring of recent observations. Returns 0 when empty. Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.ringMu.Lock()
	vals := append([]float64(nil), h.ring...)
	h.ringMu.Unlock()
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	idx := int(math.Ceil(q*float64(len(vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (a +Inf bucket is implicit). Nil registry returns
// nil.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := newHistogram(bounds)
	r.register(&series{name: name, help: help, typ: "histogram", hist: h})
	return h
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds))
	return h
}

// LogBuckets returns log-spaced bucket upper bounds covering [min, max]
// with perDecade buckets per power of ten. The last bound is >= max; a
// +Inf bucket is implicit at registration.
func LogBuckets(min, max float64, perDecade int) []float64 {
	if min <= 0 || max <= min || perDecade <= 0 {
		panic("obs: LogBuckets needs 0 < min < max and perDecade > 0")
	}
	step := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := min; ; b *= step {
		out = append(out, b)
		if b >= max {
			return out
		}
	}
}

// LatencyBuckets is the standard log bucket layout for second-valued
// latency histograms: 10 buckets per decade from 10µs to 10s.
func LatencyBuckets() []float64 { return LogBuckets(1e-5, 10, 10) }

// HistogramVec is a histogram family keyed by one label (tenant, device,
// phase). Children are created lazily on first Observe and rendered as
// `name_bucket{label="v",le="..."}` plus per-label _sum/_count.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	order  []string
	kids   map[string]*Histogram
}

// HistogramVec registers a labeled histogram family. Nil registry
// returns nil; the nil vec's methods are no-ops.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	hv := &HistogramVec{label: label, bounds: append([]float64(nil), bounds...), kids: make(map[string]*Histogram)}
	r.register(&series{name: name, help: help, typ: "histogram", histVec: hv})
	return hv
}

// With returns the child histogram for one label value, creating it on
// first use. Nil-safe: a nil vec returns a nil (no-op) histogram.
func (hv *HistogramVec) With(value string) *Histogram {
	if hv == nil {
		return nil
	}
	hv.mu.Lock()
	h, ok := hv.kids[value]
	if !ok {
		h = newHistogram(hv.bounds)
		hv.kids[value] = h
		hv.order = append(hv.order, value)
	}
	hv.mu.Unlock()
	return h
}

// Observe records v under the given label value. Nil-safe.
func (hv *HistogramVec) Observe(value string, v float64) { hv.With(value).Observe(v) }

// children returns the label values in first-use order with their
// histograms, for exposition.
func (hv *HistogramVec) children() ([]string, map[string]*Histogram) {
	hv.mu.Lock()
	defer hv.mu.Unlock()
	order := append([]string(nil), hv.order...)
	kids := make(map[string]*Histogram, len(hv.kids))
	for k, v := range hv.kids {
		kids[k] = v
	}
	return order, kids
}

// formatLabels renders {k="v",...} with sorted keys ("" when empty).
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (HELP/TYPE comments, one sample per line).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: nil registry")
	}
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	metrics := make(map[string]*series, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
	}
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, name := range order {
		s := metrics[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", s.name, s.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.typ)
		switch {
		case s.hist != nil:
			writeHistText(bw, s.name, "", s.hist)
		case s.histVec != nil:
			order, kids := s.histVec.children()
			for _, lv := range order {
				writeHistText(bw, s.name, fmt.Sprintf("%s=%q,", s.histVec.label, lv), kids[lv])
			}
		case s.samples != nil:
			for _, smp := range s.samples() {
				fmt.Fprintf(bw, "%s%s %s\n", s.name, formatLabels(smp.Labels), formatFloat(smp.Value))
			}
		default:
			fmt.Fprintf(bw, "%s %s\n", s.name, formatFloat(s.value()))
		}
	}
	return bw.Flush()
}

// writeHistText renders one histogram's cumulative buckets plus
// _sum/_count; labelPrefix is "" or `key="value",` for vec children.
func writeHistText(bw *bufio.Writer, name, labelPrefix string, h *Histogram) {
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(bw, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, formatFloat(b), cum)
	}
	fmt.Fprintf(bw, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, h.Count())
	if labelPrefix == "" {
		fmt.Fprintf(bw, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count())
	} else {
		lp := strings.TrimSuffix(labelPrefix, ",")
		fmt.Fprintf(bw, "%s_sum{%s} %s\n", name, lp, formatFloat(h.Sum()))
		fmt.Fprintf(bw, "%s_count{%s} %d\n", name, lp, h.Count())
	}
}

// formatFloat renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonMetric is one series in the JSON dump.
type jsonMetric struct {
	Name      string             `json:"name"`
	Type      string             `json:"type"`
	Help      string             `json:"help,omitempty"`
	Value     *float64           `json:"value,omitempty"`
	Samples   []jsonSample       `json:"samples,omitempty"`
	Buckets   map[string]int64   `json:"buckets,omitempty"`
	Sum       *float64           `json:"sum,omitempty"`
	Count     *int64             `json:"count,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
	Children  []jsonChildHist    `json:"children,omitempty"`
	Labels    map[string]float64 `json:"-"`
}

type jsonSample struct {
	Labels map[string]string `json:"labels"`
	Value  float64           `json:"value"`
}

// jsonChildHist is one labeled child of a HistogramVec in the JSON dump.
type jsonChildHist struct {
	Label     string             `json:"label"`
	Buckets   map[string]int64   `json:"buckets"`
	Sum       float64            `json:"sum"`
	Count     int64              `json:"count"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// histQuantiles reports the standard exact quantiles over the live ring.
func histQuantiles(h *Histogram) map[string]float64 {
	if h.Count() == 0 {
		return nil
	}
	return map[string]float64{
		"0.5":  h.Quantile(0.5),
		"0.9":  h.Quantile(0.9),
		"0.99": h.Quantile(0.99),
	}
}

func histBuckets(h *Histogram) map[string]int64 {
	out := make(map[string]int64, len(h.bounds))
	for i, b := range h.bounds {
		out[formatFloat(b)] = h.counts[i].Load()
	}
	return out
}

// DumpJSON renders the registry as a JSON array of series — the format
// BENCH artifacts embed.
func (r *Registry) DumpJSON() ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("obs: nil registry")
	}
	r.mu.Lock()
	order := append([]string(nil), r.order...)
	metrics := make(map[string]*series, len(r.metrics))
	for k, v := range r.metrics {
		metrics[k] = v
	}
	r.mu.Unlock()
	out := make([]jsonMetric, 0, len(order))
	for _, name := range order {
		s := metrics[name]
		jm := jsonMetric{Name: s.name, Type: s.typ, Help: s.help}
		switch {
		case s.hist != nil:
			jm.Buckets = histBuckets(s.hist)
			sum, cnt := s.hist.Sum(), s.hist.Count()
			jm.Sum, jm.Count = &sum, &cnt
			jm.Quantiles = histQuantiles(s.hist)
		case s.histVec != nil:
			order, kids := s.histVec.children()
			for _, lv := range order {
				h := kids[lv]
				jm.Children = append(jm.Children, jsonChildHist{
					Label: lv, Buckets: histBuckets(h), Sum: h.Sum(), Count: h.Count(),
					Quantiles: histQuantiles(h),
				})
			}
		case s.samples != nil:
			for _, smp := range s.samples() {
				jm.Samples = append(jm.Samples, jsonSample{Labels: smp.Labels, Value: smp.Value})
			}
		default:
			v := s.value()
			jm.Value = &v
		}
		out = append(out, jm)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ParsePrometheus parses text exposition output into a flat
// name{labels}→value map, returning an error on any malformed line. It
// exists so tests and the CI observability job can assert that a
// /metrics scrape parses.
func ParsePrometheus(rd io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		// Split on the last space: the metric name may contain a quoted
		// label set with spaces inside values.
		idx := strings.LastIndexByte(text, ' ')
		if idx <= 0 {
			return nil, fmt.Errorf("line %d: no value separator: %q", line, text)
		}
		name, val := text[:idx], text[idx+1:]
		if !validSeriesName(name) {
			return nil, fmt.Errorf("line %d: malformed series name: %q", line, name)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: malformed value %q: %v", line, val, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples found")
	}
	return out, nil
}

// validSeriesName checks `metric_name` or `metric_name{...}` shape.
func validSeriesName(name string) bool {
	base := name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return false
		}
		base = name[:i]
	}
	if base == "" {
		return false
	}
	for i, c := range base {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
