package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := NewTracer(1, 16, 1)
	root := tr.Start("request")
	root.Annotate("tenant", "gold")
	admit := root.Child("admit")
	admit.End()
	batch := root.Child("batch")
	off := batch.Child("offload")
	enc := off.Child("encode")
	enc.End()
	off.Child("dispatch").End()
	off.Child("decode").End()
	off.End()
	batch.End()
	root.End()

	if !root.Ended() {
		t.Fatal("root not ended")
	}
	if got := root.Find("encode"); got != enc {
		t.Fatalf("Find(encode) = %v", got)
	}
	if got := root.Find("encode").Parent(); got != off {
		t.Fatalf("encode parented to %q, want offload", got.Name())
	}
	if got := root.Attr("tenant"); got != "gold" {
		t.Fatalf("tenant attr = %q", got)
	}
	var names []string
	root.Walk(func(s *Span) { names = append(names, s.Name()) })
	want := []string{"request", "admit", "batch", "offload", "encode", "dispatch", "decode"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("walk order %v, want %v", names, want)
	}
	if n := len(root.FindAll("offload")); n != 1 {
		t.Fatalf("FindAll(offload) = %d", n)
	}
	if len(tr.Recent()) != 1 || tr.Last() != root {
		t.Fatal("completed root not filed into recent ring")
	}
}

func TestSpanEndClosesDescendants(t *testing.T) {
	tr := NewTracer(1, 4, 1)
	root := tr.Start("request")
	child := root.Child("batch")
	grand := child.Child("offload")
	root.End() // error path: abandon open descendants
	if !child.Ended() || !grand.Ended() {
		t.Fatal("End did not close open descendants")
	}
	if grand.Duration() < 0 {
		t.Fatal("negative duration after forced close")
	}
	// Idempotent: a second End must not double-file the trace.
	root.End()
	if got := len(tr.Recent()); got != 1 {
		t.Fatalf("recent ring has %d entries after double End", got)
	}
}

func TestNilSpanIsFreeAndSafe(t *testing.T) {
	var s *Span
	// The whole disabled path must be exactly zero-alloc: Child on nil,
	// annotations, End, lookups.
	if allocs := testing.AllocsPerRun(100, func() {
		c := s.Child("x")
		c.Annotate("k", "v")
		c.Annotatef("k", "%d", 1)
		c.End()
		_ = c.Find("x")
		_ = c.Attr("k")
		_ = c.Duration()
	}); allocs != 0 {
		t.Fatalf("nil span ops allocate %.1f/op, want 0", allocs)
	}
	if got := SpanFrom(WithSpan(context.Background(), nil)); got != nil {
		t.Fatal("nil span through context came back non-nil")
	}
	var tr *Tracer
	if sp := tr.Start("x"); sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	if tr := NewTracer(0, 4, 1); tr.Start("x") != nil {
		t.Fatal("zero-rate tracer minted a span")
	}
}

func TestSamplingIsSeededAndProportional(t *testing.T) {
	tr := NewTracer(0.25, 1024, 42)
	sampled := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if sp := tr.Start("r"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled < n/8 || sampled > n/2 {
		t.Fatalf("sampled %d of %d at rate 0.25", sampled, n)
	}
	started, traced, completed := tr.Counts()
	if started != n || traced != int64(sampled) || completed != int64(sampled) {
		t.Fatalf("counts = (%d,%d,%d), want (%d,%d,%d)", started, traced, completed, n, sampled, sampled)
	}
	// Same seed, same draws.
	tr2 := NewTracer(0.25, 1024, 42)
	sampled2 := 0
	for i := 0; i < n; i++ {
		if sp := tr2.Start("r"); sp != nil {
			sampled2++
			sp.End()
		}
	}
	if sampled2 != sampled {
		t.Fatalf("same seed sampled %d then %d", sampled, sampled2)
	}
}

func TestTracerRecentRingRotates(t *testing.T) {
	tr := NewTracer(1, 3, 1)
	for i := 0; i < 5; i++ {
		sp := tr.Start("r")
		sp.Annotatef("i", "%d", i)
		sp.End()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	for i, sp := range recent {
		if want := fmt.Sprint(i + 2); sp.Attr("i") != want {
			t.Fatalf("ring[%d] = trace %s, want %s (oldest first)", i, sp.Attr("i"), want)
		}
	}
}

func TestBreakdownSelfTime(t *testing.T) {
	root := &Span{name: "request", start: time.Now().Add(-100 * time.Millisecond)}
	child := root.Child("work")
	child.start = root.start.Add(20 * time.Millisecond)
	child.end = child.start.Add(50 * time.Millisecond)
	root.end = root.start.Add(100 * time.Millisecond)
	bd := root.Breakdown()
	if got := bd["work"]; got != 50*time.Millisecond {
		t.Fatalf("work self time %v", got)
	}
	if got := bd["request"]; got != 50*time.Millisecond {
		t.Fatalf("request self time %v (100ms minus 50ms child)", got)
	}
	var b strings.Builder
	root.RenderBreakdown(&b)
	if !strings.Contains(b.String(), "work") {
		t.Fatalf("breakdown render missing span name:\n%s", b.String())
	}
}

func TestRegistryPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.")
	c.Add(41)
	c.Inc()
	g := r.Gauge("test_depth", "Depth.")
	g.Set(3)
	g.Add(-1)
	r.CounterFunc("test_computed_total", "Computed.", func() float64 { return 7 })
	r.SampleFunc("test_labeled_total", "Labeled.", "counter", func() []Sample {
		return []Sample{
			{Labels: map[string]string{"tenant": "gold", "outcome": "ok"}, Value: 5},
			{Labels: map[string]string{"tenant": "bronze", "outcome": "ok"}, Value: 2},
		}
	})
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
	}
	checks := map[string]float64{
		"test_requests_total": 42,
		"test_depth":          2,
		"test_computed_total": 7,
		`test_labeled_total{outcome="ok",tenant="gold"}`:   5,
		`test_labeled_total{outcome="ok",tenant="bronze"}`: 2,
		`test_latency_seconds_bucket{le="0.001"}`:          1,
		`test_latency_seconds_bucket{le="0.01"}`:           1,
		`test_latency_seconds_bucket{le="0.1"}`:            2,
		`test_latency_seconds_bucket{le="+Inf"}`:           3,
		"test_latency_seconds_count":                       3,
	}
	for name, want := range checks {
		if got[name] != want {
			t.Errorf("%s = %v, want %v", name, got[name], want)
		}
	}

	js, err := r.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	var dump []map[string]any
	if err := json.Unmarshal(js, &dump); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if len(dump) != 5 {
		t.Fatalf("JSON dump has %d series, want 5", len(dump))
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.CounterFunc("dup_total", "y", func() float64 { return 0 })
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	c.Inc()
	g := r.Gauge("y", "y")
	g.Set(1)
	h := r.Histogram("z", "z", []float64{1})
	h.Observe(0.5)
	r.CounterFunc("f", "f", func() float64 { return 0 })
	if err := r.WritePrometheus(io.Discard); err == nil {
		t.Fatal("nil registry WritePrometheus should error")
	}
}

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 7; i++ {
		r.Record(Event{Kind: KindGrant, Subsystem: "test", Device: i, Slot: -1})
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d, want 4", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", r.Dropped())
	}
	events := r.Dump()
	for i, ev := range events {
		if want := int64(i + 4); ev.Seq != want {
			t.Fatalf("dump[%d].Seq = %d, want %d (oldest first)", i, ev.Seq, want)
		}
		if ev.Time.IsZero() {
			t.Fatal("Record did not stamp Time")
		}
	}
	since := r.DumpSince(5)
	if len(since) != 2 || since[0].Seq != 6 {
		t.Fatalf("DumpSince(5) = %+v", since)
	}
	if r.DumpSince(r.LastSeq()) != nil {
		t.Fatal("DumpSince(last) should be empty")
	}
	txt := FormatEvents(events)
	if !strings.Contains(txt, "grant") || !strings.Contains(txt, "dev=6") {
		t.Fatalf("FormatEvents output:\n%s", txt)
	}
	var nilRec *FlightRecorder
	nilRec.Record(Event{}) // must not panic
	if nilRec.Dump() != nil || nilRec.Len() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

func TestObservabilityBundleAndHTTP(t *testing.T) {
	o := New(Options{TraceSample: 1, TraceKeep: 4, RecorderSize: 8, Seed: 1})
	sp := o.StartTrace("request")
	sp.Child("admit").End()
	sp.End()
	o.Record(Event{Kind: KindQuarantine, Subsystem: "fleet", Device: 2, Slot: -1, Detail: "test"})
	o.Reg().CounterFunc("bundle_test_total", "x", func() float64 { return 9 })

	ms, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	parsed, err := ParsePrometheus(strings.NewReader(metrics))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v", err)
	}
	if parsed["bundle_test_total"] != 9 {
		t.Fatalf("bundle_test_total = %v", parsed["bundle_test_total"])
	}
	var js any
	if err := json.Unmarshal([]byte(get("/metrics.json")), &js); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if traces := get("/traces"); !strings.Contains(traces, "request") || !strings.Contains(traces, "admit") {
		t.Fatalf("/traces output:\n%s", traces)
	}
	var events []Event
	if err := json.Unmarshal([]byte(get("/flightrecorder")), &events); err != nil {
		t.Fatalf("/flightrecorder does not parse: %v", err)
	}
	if len(events) != 1 || events[0].Kind != KindQuarantine {
		t.Fatalf("/flightrecorder events = %+v", events)
	}
}

func TestNilObservability(t *testing.T) {
	var o *Observability
	if sp := o.StartTrace("x"); sp != nil {
		t.Fatal("nil bundle minted a span")
	}
	o.Record(Event{}) // must not panic
	if o.Reg() != nil {
		t.Fatal("nil bundle returned a registry")
	}
	if err := o.WriteMetrics(io.Discard); err == nil {
		t.Fatal("nil bundle WriteMetrics should error")
	}
	if _, err := o.Serve("127.0.0.1:0"); err == nil {
		t.Fatal("nil bundle Serve should error")
	}
}
