package obs

import (
	"fmt"
	"sync"
	"time"
)

// SLOObjective is one tenant's service-level objective. A request is
// latency-"bad" when it exceeds LatencyTarget; the objective holds while
// at least LatencyGoal of requests in the window are good and the error
// fraction stays within ErrorBudget.
type SLOObjective struct {
	// Tenant names the tenant the objective applies to; "*" is the
	// default for tenants without an explicit objective.
	Tenant string
	// LatencyTarget is the per-request latency bound (e.g. the P99
	// target): requests slower than this consume error budget.
	LatencyTarget time.Duration
	// LatencyGoal is the fraction of requests that must meet the target
	// (e.g. 0.99 for "P99 <= target"). Zero disables the latency SLO.
	LatencyGoal float64
	// ErrorBudget is the tolerated failure fraction (e.g. 0.001). Zero
	// disables the error-rate SLO.
	ErrorBudget float64
}

// SLOConfig configures an SLOTracker.
type SLOConfig struct {
	Objectives []SLOObjective
	// Windows are the sliding evaluation windows; default {30s, 5m}.
	// Multi-window burn rates distinguish a fast ongoing burn (short
	// window) from a sustained one (long window).
	Windows []time.Duration
	// BurnThreshold is the burn rate at which the breach callback fires;
	// default 1.0 (consuming budget exactly as fast as it accrues).
	BurnThreshold float64
	// Now is the clock; nil means time.Now. Tests inject a fake clock to
	// pin burn-rate rise and fall deterministically.
	Now func() time.Time
}

// Breach is one threshold crossing reported to the OnBreach hook.
// Cleared=false marks the burn rate rising through the threshold,
// Cleared=true its return below it.
type Breach struct {
	Tenant  string
	Window  time.Duration
	SLO     string // "latency" | "errors"
	Burn    float64
	Cleared bool
}

// BurnRate is one tenant/window/SLO burn-rate reading. Burn 1.0 means
// the error budget is being consumed exactly at the sustainable rate;
// above 1.0 the objective will be missed if the burn persists.
type BurnRate struct {
	Tenant string
	Window time.Duration
	SLO    string
	Burn   float64
}

// sloSample is one observed request.
type sloSample struct {
	at     time.Time
	lat    time.Duration
	failed bool
}

// sloRingCap bounds the per-tenant sample ring. At serving rates beyond
// cap/longest-window the burn rate degrades to "over the last cap
// requests", which only under-reports windows already saturated with
// samples.
const sloRingCap = 8192

type sloRing struct {
	buf []sloSample
	pos int
}

func (r *sloRing) add(s sloSample) {
	if len(r.buf) < sloRingCap {
		r.buf = append(r.buf, s)
		return
	}
	r.buf[r.pos] = s
	r.pos = (r.pos + 1) % sloRingCap
}

// SLOTracker evaluates per-tenant objectives over sliding windows and
// exports multi-window burn-rate gauges
// (darknight_slo_burn_rate{tenant,window,slo}). A threshold callback
// hook lets the fleet manager subscribe to breaches.
type SLOTracker struct {
	mu         sync.Mutex
	objectives map[string]SLOObjective
	windows    []time.Duration
	threshold  float64
	now        func() time.Time
	rings      map[string]*sloRing
	breached   map[string]bool
	onBreach   []func(Breach)
	breaches   int64 // rising crossings observed (monotone)
}

// NewSLOTracker builds a tracker; a config with no objectives yields a
// tracker that observes but reports no burn rates.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	t := &SLOTracker{
		objectives: make(map[string]SLOObjective, len(cfg.Objectives)),
		windows:    cfg.Windows,
		threshold:  cfg.BurnThreshold,
		now:        cfg.Now,
		rings:      make(map[string]*sloRing),
		breached:   make(map[string]bool),
	}
	for _, o := range cfg.Objectives {
		t.objectives[o.Tenant] = o
	}
	if len(t.windows) == 0 {
		t.windows = []time.Duration{30 * time.Second, 5 * time.Minute}
	}
	if t.threshold <= 0 {
		t.threshold = 1
	}
	if t.now == nil {
		t.now = time.Now
	}
	return t
}

// OnBreach subscribes a threshold callback; every subscriber sees every
// crossing (the fleet records breaches while a brownout controller acts
// on them). Callbacks run outside the tracker lock, on the goroutine that
// called Observe, in subscription order. Nil-safe.
func (t *SLOTracker) OnBreach(fn func(Breach)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.onBreach = append(t.onBreach, fn)
	t.mu.Unlock()
}

// objectiveFor resolves a tenant's objective, falling back to "*".
func (t *SLOTracker) objectiveFor(tenant string) (SLOObjective, bool) {
	if o, ok := t.objectives[tenant]; ok {
		return o, true
	}
	o, ok := t.objectives["*"]
	return o, ok
}

// Observe records one finished request and re-evaluates the tenant's
// burn rates, firing the breach hook on threshold crossings. Nil-safe.
func (t *SLOTracker) Observe(tenant string, latency time.Duration, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	obj, ok := t.objectiveFor(tenant)
	if !ok {
		t.mu.Unlock()
		return
	}
	ring := t.rings[tenant]
	if ring == nil {
		ring = &sloRing{}
		t.rings[tenant] = ring
	}
	ring.add(sloSample{at: t.now(), lat: latency, failed: failed})
	var fired []Breach
	hooks := t.onBreach
	for _, br := range t.burnsLocked(tenant, obj, ring) {
		key := fmt.Sprintf("%s|%s|%s", br.Tenant, br.Window, br.SLO)
		switch {
		case br.Burn >= t.threshold && !t.breached[key]:
			t.breached[key] = true
			t.breaches++
			fired = append(fired, Breach{Tenant: br.Tenant, Window: br.Window, SLO: br.SLO, Burn: br.Burn})
		case br.Burn < t.threshold && t.breached[key]:
			delete(t.breached, key)
			fired = append(fired, Breach{Tenant: br.Tenant, Window: br.Window, SLO: br.SLO, Burn: br.Burn, Cleared: true})
		}
	}
	t.mu.Unlock()
	for _, b := range fired {
		for _, hook := range hooks {
			hook(b)
		}
	}
}

// burnsLocked computes one tenant's burn rates across all windows.
func (t *SLOTracker) burnsLocked(tenant string, obj SLOObjective, ring *sloRing) []BurnRate {
	now := t.now()
	var out []BurnRate
	for _, w := range t.windows {
		cutoff := now.Add(-w)
		var total, slow, failed int
		for _, s := range ring.buf {
			if s.at.Before(cutoff) {
				continue
			}
			total++
			if s.failed {
				failed++
			} else if s.lat > obj.LatencyTarget {
				slow++
			}
		}
		if obj.LatencyGoal > 0 && obj.LatencyGoal < 1 {
			burn := 0.0
			if total > 0 {
				burn = (float64(slow+failed) / float64(total)) / (1 - obj.LatencyGoal)
			}
			out = append(out, BurnRate{Tenant: tenant, Window: w, SLO: "latency", Burn: burn})
		}
		if obj.ErrorBudget > 0 {
			burn := 0.0
			if total > 0 {
				burn = (float64(failed) / float64(total)) / obj.ErrorBudget
			}
			out = append(out, BurnRate{Tenant: tenant, Window: w, SLO: "errors", Burn: burn})
		}
	}
	return out
}

// BurnRates recomputes every tenant's burn rates over the live windows.
// Nil-safe: a nil tracker reports nothing.
func (t *SLOTracker) BurnRates() []BurnRate {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []BurnRate
	for tenant, ring := range t.rings {
		obj, ok := t.objectiveFor(tenant)
		if !ok {
			continue
		}
		out = append(out, t.burnsLocked(tenant, obj, ring)...)
	}
	return out
}

// Breaches returns the number of rising threshold crossings seen.
func (t *SLOTracker) Breaches() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.breaches
}

// Register exports the tracker on a registry:
// darknight_slo_burn_rate{tenant,window,slo} recomputed at scrape time,
// plus a darknight_slo_breaches_total counter. Nil-safe.
func (t *SLOTracker) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.SampleFunc("darknight_slo_burn_rate",
		"Error-budget burn rate per tenant, window and SLO (1.0 = budget consumed exactly at the sustainable rate).",
		"gauge", func() []Sample {
			brs := t.BurnRates()
			out := make([]Sample, 0, len(brs))
			for _, br := range brs {
				out = append(out, Sample{Labels: map[string]string{
					"tenant": br.Tenant, "window": br.Window.String(), "slo": br.SLO,
				}, Value: br.Burn})
			}
			return out
		})
	r.CounterFunc("darknight_slo_breaches_total",
		"Rising burn-rate threshold crossings observed by the SLO tracker.",
		func() float64 { return float64(t.Breaches()) })
}
