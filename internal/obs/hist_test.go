package obs

import (
	"math"
	"strings"
	"testing"
)

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-3, 1, 3)
	if b[0] != 1e-3 {
		t.Fatalf("first bound %v, want 1e-3", b[0])
	}
	if last := b[len(b)-1]; last < 1 {
		t.Fatalf("last bound %v does not cover max 1", last)
	}
	// 3 per decade over 3 decades: 10 bounds including both endpoints.
	if len(b) != 10 {
		t.Fatalf("got %d bounds, want 10: %v", len(b), b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
		ratio := b[i] / b[i-1]
		if want := math.Pow(10, 1.0/3); math.Abs(ratio-want) > 1e-9 {
			t.Fatalf("bucket ratio %v, want %v", ratio, want)
		}
	}
	for _, bad := range []func(){
		func() { LogBuckets(0, 1, 3) },
		func() { LogBuckets(1, 1, 3) },
		func() { LogBuckets(1e-3, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad LogBuckets args did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "x", []float64{0.01, 0.1, 1})
	for i := 0; i < 99; i++ {
		h.Observe(0.005) // first bucket
	}
	h.Observe(5) // above every bound: +Inf only

	if h.Count() != 100 {
		t.Fatalf("count %d, want 100", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-(99*0.005+5)) > 1e-9 {
		t.Fatalf("sum %v", sum)
	}
	// Exact nearest-rank quantiles from the live ring: P50 and P90 land on
	// the 0.005 mass, P100 on the outlier.
	if q := h.Quantile(0.5); q != 0.005 {
		t.Fatalf("P50 %v, want 0.005", q)
	}
	if q := h.Quantile(0.99); q != 0.005 {
		t.Fatalf("P99 %v, want 0.005 (99 of 100 samples)", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Fatalf("P100 %v, want 5", q)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.01"} 99`,
		`test_latency_seconds_bucket{le="0.1"} 99`, // cumulative
		`test_latency_seconds_bucket{le="1"} 99`,
		`test_latency_seconds_bucket{le="+Inf"} 100`,
		"test_latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRingWindow(t *testing.T) {
	h := newHistogram([]float64{1e9})
	// Overflow the ring: quantiles must reflect the most recent
	// histRingCap observations, not the whole history.
	for i := 0; i < histRingCap; i++ {
		h.Observe(1000) // old mass, fully evicted below
	}
	for i := 0; i < histRingCap; i++ {
		h.Observe(1)
	}
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("max over live ring = %v, want 1 (old mass evicted)", q)
	}
	if h.Count() != 2*histRingCap {
		t.Fatalf("count %d, want %d (buckets keep full history)", h.Count(), 2*histRingCap)
	}
}

func TestHistogramVecExposition(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("test_tenant_latency_seconds", "x", "tenant", []float64{0.1, 1})
	hv.Observe("gold", 0.05)
	hv.Observe("gold", 0.05)
	hv.Observe("bronze", 0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_tenant_latency_seconds_bucket{tenant="gold",le="0.1"} 2`,
		`test_tenant_latency_seconds_bucket{tenant="gold",le="+Inf"} 2`,
		`test_tenant_latency_seconds_count{tenant="gold"} 2`,
		`test_tenant_latency_seconds_bucket{tenant="bronze",le="0.1"} 0`,
		`test_tenant_latency_seconds_bucket{tenant="bronze",le="1"} 1`,
		`test_tenant_latency_seconds_count{tenant="bronze"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if hv.With("gold").Quantile(0.5) != 0.05 {
		t.Fatal("child quantile wrong")
	}

	// JSON dump carries per-child buckets and quantiles.
	js, err := r.DumpJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"label": "gold"`, `"label": "bronze"`, `"0.99"`} {
		if !strings.Contains(string(js), want) {
			t.Fatalf("JSON dump missing %q:\n%s", want, js)
		}
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram not inert")
	}
	var hv *HistogramVec
	hv.Observe("x", 1)
	if hv.With("x") != nil {
		t.Fatal("nil vec minted a child")
	}
	var r *Registry
	if r.Histogram("x", "", nil) != nil || r.HistogramVec("x", "", "l", nil) != nil {
		t.Fatal("nil registry minted a histogram")
	}
}

func TestHashWeightsOrderSensitive(t *testing.T) {
	a := HashWeights([]float64{1, 2, 3})
	b := HashWeights([]float64{3, 2, 1})
	if a == b {
		t.Fatal("hash ignores order")
	}
	if a != HashWeights([]float64{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	if HashWeights(nil) == HashWeights([]float64{0}) {
		t.Fatal("hash ignores length")
	}
}
