// Package obs is the unified observability layer of the stack: request
// tracing, an exportable metrics registry, and a chaos flight recorder,
// shared by serve, sched, fleet, gpu and masking.
//
// The three pillars:
//
//   - Tracing (span.go): allocation-frugal spans threaded through the
//     serving path — batcher admit→seal, the scheduler's
//     encode/dispatch/decode lanes (serial, Pipeline and TrainPipeline),
//     fleet grant acquisition and GPU flights — so every request yields a
//     span tree with batch/lane/gang/device annotations and a critical-path
//     breakdown. Disabled tracing costs nil checks only: every method is a
//     no-op on a nil receiver, and an unsampled request carries a nil span
//     through the whole stack.
//
//   - Metrics (registry.go): typed counters/gauges/histograms plus
//     registration-time closures over the subsystems' existing counters
//     (serve.Metrics, fleet.Manager, sched phase stats, masking.NoisePool),
//     exported as Prometheus text via the /metrics listener (http.go) and
//     dumpable as JSON for bench artifacts. Export reads the subsystems at
//     scrape time — the hot paths are untouched.
//
//   - Flight recorder (recorder.go): a bounded ring of structured events
//     (grant granted/released, quarantine transitions, straggler
//     re-dispatch, cache-miss refill, integrity verdicts) with
//     Dump/DumpSince for post-mortem inspection; chaos tests dump it on
//     failure.
//
// An Observability bundles the three so subsystems take one optional
// handle. All of it is nil-tolerant: a nil *Observability (or any nil
// pillar) disables that surface with zero overhead.
package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// BuildVersion identifies this build of the stack in
// darknight_build_info scrapes, so metrics are attributable across a
// fleet of heterogeneous binaries.
const BuildVersion = "0.8.0"

// Options configures an Observability bundle.
type Options struct {
	// TraceSample is the fraction of requests traced: 0 disables tracing
	// (Start returns nil spans), 1 traces everything.
	TraceSample float64
	// TraceKeep bounds the ring of completed root spans kept for dumps
	// (default 16).
	TraceKeep int
	// RecorderSize bounds the flight-recorder event ring; <= 0 picks the
	// default of 1024.
	RecorderSize int
	// Seed drives the sampling draws, making traced runs reproducible.
	Seed int64
}

// Observability bundles the three pillars. Subsystems accept a
// *Observability and use whichever pillars are non-nil; a nil bundle
// disables everything.
type Observability struct {
	Tracer   *Tracer
	Registry *Registry
	Recorder *FlightRecorder

	mu       sync.Mutex
	snapshot func() (*Snapshot, error)
}

// New assembles a bundle: a registry always (pre-seeded with the
// build-info and uptime families), a tracer at the configured sampling
// rate, and a flight recorder of the configured capacity.
func New(o Options) *Observability {
	reg := NewRegistry()
	start := time.Now()
	reg.SampleFunc("darknight_build_info",
		"Build metadata (constant 1); the labels carry the version.",
		"gauge", func() []Sample {
			return []Sample{{Labels: map[string]string{
				"version":   BuildVersion,
				"goversion": runtime.Version(),
			}, Value: 1}}
		})
	reg.GaugeFunc("darknight_uptime_seconds",
		"Seconds since this observability bundle was created.",
		func() float64 { return time.Since(start).Seconds() })
	return &Observability{
		Tracer:   NewTracer(o.TraceSample, o.TraceKeep, o.Seed),
		Registry: reg,
		Recorder: NewFlightRecorder(o.RecorderSize),
	}
}

// SetSnapshotProvider installs the closure behind the /snapshot HTTP
// endpoint — typically the facade Server's CaptureSnapshot. Nil-safe.
func (o *Observability) SetSnapshotProvider(fn func() (*Snapshot, error)) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.snapshot = fn
	o.mu.Unlock()
}

// snapshotProvider returns the installed provider, or nil.
func (o *Observability) snapshotProvider() func() (*Snapshot, error) {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.snapshot
}

// StartTrace begins a sampled root span, or returns nil when the bundle,
// its tracer, or the sampling draw says no.
func (o *Observability) StartTrace(name string) *Span {
	if o == nil {
		return nil
	}
	return o.Tracer.Start(name)
}

// Record appends one event to the flight recorder, if one is attached.
func (o *Observability) Record(ev Event) {
	if o == nil {
		return
	}
	o.Recorder.Record(ev)
}

// Reg returns the registry, or nil.
func (o *Observability) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// WriteMetrics writes the Prometheus text exposition of the registry.
func (o *Observability) WriteMetrics(w io.Writer) error {
	if o == nil || o.Registry == nil {
		return fmt.Errorf("obs: no registry attached")
	}
	return o.Registry.WritePrometheus(w)
}
