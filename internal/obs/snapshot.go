package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// SnapshotVersion is the schema version written by CaptureSnapshot.
// Loaders reject versions they do not understand; additive fields do not
// bump the version, structural changes do.
const SnapshotVersion = 1

// Snapshot is the versioned, JSON-serializable capture of live serving
// state: fleet health/quarantine/probation scores, per-tenant queue
// depths and in-flight grants, batcher and scheduler lane occupancy,
// model-weight hash, RNG seeds, the completed-batch log and the recent
// flight-recorder window. It is assembled by the facade's
// Server.CaptureSnapshot and consumed by the obs/replay harness, which
// re-runs the captured window deterministically.
//
// The schema deliberately uses only basic types: obs sits below fleet,
// serve and sched in the import graph, so those layers fill the sections
// describing themselves.
type Snapshot struct {
	Version    int       `json:"version"`
	CapturedAt time.Time `json:"captured_at"`

	Sched   SchedInfo   `json:"sched"`
	Serving ServingInfo `json:"serving"`
	Model   ModelInfo   `json:"model"`
	Cluster ClusterInfo `json:"cluster"`
	Fleet   FleetInfo   `json:"fleet"`

	// Batches is the completed-batch log in completion order: the sealed
	// coded inputs, gang membership and decoded outputs of each virtual
	// batch. Replay re-runs exactly these.
	Batches []BatchRecord `json:"batches"`
	// BatchesDropped counts batches evicted from the bounded log before
	// capture; replay event-sequence comparison requires 0 (a complete
	// window).
	BatchesDropped int64 `json:"batches_dropped"`

	// Events is the flight-recorder window at capture time, oldest first.
	Events []Event `json:"events"`
	// EventsDropped counts events overwritten by the recorder ring.
	EventsDropped int64 `json:"events_dropped"`
}

// SchedInfo captures the coding geometry, quantization operating point
// and seeds of the scheduler — everything that shapes the exact field
// arithmetic of a batch.
type SchedInfo struct {
	K              int     `json:"k"`               // virtual batch size
	Collusion      int     `json:"collusion"`       // M noise rows
	Redundancy     int     `json:"redundancy"`      // E integrity equations
	StragglerSlack int     `json:"straggler_slack"` // decode after all-but-N
	FuseBlocks     bool    `json:"fuse_blocks"`     // fused-offload compile pass
	FracBits       uint    `json:"frac_bits"`       // fixed-point precision l
	NormLimit      float64 `json:"norm_limit"`      // pre-quantization norm bound
	Seed           int64   `json:"seed"`
}

// ServingInfo captures the serve layer's configuration and occupancy.
type ServingInfo struct {
	Workers          int   `json:"workers"`
	PipelineDepth    int   `json:"pipeline_depth"`
	Continuous       bool  `json:"continuous"`
	Recover          bool  `json:"recover"`
	QueueDepthCfg    int   `json:"queue_depth_cfg"`
	MaxWaitNs        int64 `json:"max_wait_ns"`
	QueueDepth       int   `json:"queue_depth"` // live admission-queue depth
	BatchesCompleted int64 `json:"batches_completed"`
	Completed        int64 `json:"completed"`
	Failed           int64 `json:"failed"`
	IntegrityEvents  int64 `json:"integrity_events"`
	ContinuousAdmits int64 `json:"continuous_admits"`
}

// ModelInfo identifies the served model. Weights are optional (WithWeights
// capture); the hash always lets replay verify it rebuilt the same model.
type ModelInfo struct {
	Arch       string    `json:"arch,omitempty"` // CLI arch name (tiny|vgg|...), "" for custom models
	Name       string    `json:"name"`
	InShape    []int     `json:"in_shape"`
	Classes    int       `json:"classes"`
	Seed       int64     `json:"seed"`
	WeightHash string    `json:"weight_hash"`
	Weights    []float64 `json:"weights,omitempty"`
}

// ClusterInfo captures the simulated GPU cluster's composition: which
// devices tamper (and how) and which are slow. Replay reconstructs the
// fault/straggler schedule from this plus the recorded batch sequence.
type ClusterInfo struct {
	Size      int               `json:"size"`
	Malicious []MaliciousDevice `json:"malicious,omitempty"`
	Slow      []SlowDevice      `json:"slow,omitempty"`
	SlowAll   bool              `json:"slow_all,omitempty"`
}

// MaliciousDevice records one tampering device's index and fault policy.
type MaliciousDevice struct {
	Index       int     `json:"index"`
	EveryNth    int     `json:"every_nth,omitempty"`
	Offset      int     `json:"offset,omitempty"`
	Probability float64 `json:"probability,omitempty"`
	Seed        int64   `json:"seed,omitempty"`
}

// SlowDevice records one straggler's index and injected delay.
type SlowDevice struct {
	Index   int   `json:"index"`
	DelayNs int64 `json:"delay_ns"`
}

// FleetInfo captures the fleet manager: per-device health, per-tenant
// lanes and the manager's counters, all read under one lock.
type FleetInfo struct {
	Config  FleetConfigInfo `json:"config"`
	Devices []DeviceInfo    `json:"devices"`
	Tenants []TenantInfo    `json:"tenants"`

	LeasedDevices    int   `json:"leased_devices"`  // devices leased to grants at capture
	BorrowedSpares   int   `json:"borrowed_spares"` // leased to speculation, not to a tenant lane
	QuarantineEvents int64 `json:"quarantine_events"`
	Readmissions     int64 `json:"readmissions"`
	StragglerEvents  int64 `json:"straggler_events"`
	Speculations     int64 `json:"speculations"`
	SLOBreaches      int64 `json:"slo_breaches"`
}

// FleetConfigInfo is the manager configuration replay rebuilds from.
type FleetConfigInfo struct {
	FaultThreshold       float64            `json:"fault_threshold"`
	SuspectScore         float64            `json:"suspect_score"`
	FaultDecay           float64            `json:"fault_decay"`
	ProbationProbability float64            `json:"probation_probability"`
	ProbationClean       int                `json:"probation_clean"`
	ProbationBackoffNs   int64              `json:"probation_backoff_ns"`
	SpeculateAfterNs     int64              `json:"speculate_after_ns"`
	Seed                 int64              `json:"seed"`
	Tenants              map[string]float64 `json:"tenants,omitempty"` // name -> weight
}

// DeviceInfo is one device's health record.
type DeviceInfo struct {
	Index       int     `json:"index"`
	ID          int     `json:"id"`
	State       string  `json:"state"` // healthy | probation | quarantined
	Leased      bool    `json:"leased"`
	FaultScore  float64 `json:"fault_score"`
	CleanStreak int     `json:"clean_streak"`
	EWMANs      int64   `json:"ewma_ns"`
	Generation  int     `json:"generation"`
	Dispatches  int64   `json:"dispatches"`
	Faults      int64   `json:"faults"`
	Stragglers  int64   `json:"stragglers"`
	Quarantines int64   `json:"quarantines"`
}

// TenantInfo is one tenant lane's occupancy and accounting.
type TenantInfo struct {
	Name          string  `json:"name"`
	Weight        float64 `json:"weight"`
	Queued        int     `json:"queued"`
	InFlight      int     `json:"in_flight"` // devices held by in-flight grants
	Grants        int64   `json:"grants"`
	DeviceSeconds float64 `json:"device_seconds"`
}

// BatchRecord is one completed virtual batch: everything replay needs to
// re-run it bit-identically. Images holds all K rows — real requests
// first, then the batcher's dummy pad rows — because quantization scales
// are data-dependent over the whole batch, so pads shape real outputs.
type BatchRecord struct {
	Seq      int64       `json:"seq"` // completion order, 1-based
	Tenant   string      `json:"tenant"`
	RealRows int         `json:"real_rows"`
	Gang     []int       `json:"gang"` // cluster slot indices granted
	Images   [][]float64 `json:"images"`
	Classes  []int       `json:"classes,omitempty"` // decoded classes, all K rows
	Culprits []int       `json:"culprits,omitempty"`
	Err      string      `json:"err,omitempty"`
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SaveSnapshot writes the snapshot to path.
func SaveSnapshot(s *Snapshot, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses and validates a snapshot from r.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	if s.Version != SnapshotVersion {
		return nil, fmt.Errorf("obs: snapshot version %d not supported (want %d)", s.Version, SnapshotVersion)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSnapshot reads a snapshot file.
func LoadSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// Validate checks the snapshot's internal consistency — the invariants
// the -race capture tests assert on every concurrent capture:
// grant counts match lane occupancy, health scores within bounds, batch
// geometry consistent with the coding parameters.
func (s *Snapshot) Validate() error {
	if s.Version != SnapshotVersion {
		return fmt.Errorf("snapshot: version %d not supported", s.Version)
	}
	if s.Sched.K <= 0 {
		return fmt.Errorf("snapshot: K=%d out of range", s.Sched.K)
	}
	gang := s.Sched.K + s.Sched.Collusion + s.Sched.Redundancy
	leased := 0
	for _, d := range s.Fleet.Devices {
		if d.State != "healthy" && d.State != "probation" && d.State != "quarantined" {
			return fmt.Errorf("snapshot: device %d has invalid state %q", d.Index, d.State)
		}
		if d.FaultScore < 0 {
			return fmt.Errorf("snapshot: device %d fault score %g < 0", d.Index, d.FaultScore)
		}
		if s.Fleet.Config.FaultThreshold > 0 && d.FaultScore > 2*s.Fleet.Config.FaultThreshold {
			return fmt.Errorf("snapshot: device %d fault score %g exceeds 2x threshold %g",
				d.Index, d.FaultScore, s.Fleet.Config.FaultThreshold)
		}
		if d.Leased {
			leased++
		}
	}
	if leased != s.Fleet.LeasedDevices {
		return fmt.Errorf("snapshot: %d devices marked leased but manager reports %d", leased, s.Fleet.LeasedDevices)
	}
	inFlight := 0
	for _, t := range s.Fleet.Tenants {
		if t.InFlight < 0 || t.Queued < 0 {
			return fmt.Errorf("snapshot: tenant %s has negative occupancy", t.Name)
		}
		inFlight += t.InFlight
	}
	// Every leased device belongs to a tenant's in-flight grant or is a
	// borrowed speculation spare: grant counts must match lane occupancy.
	if want := inFlight + s.Fleet.BorrowedSpares; leased != want {
		return fmt.Errorf("snapshot: %d leased devices != %d in in-flight grants + %d borrowed spares",
			leased, inFlight, s.Fleet.BorrowedSpares)
	}
	for i, b := range s.Batches {
		if len(b.Images) != s.Sched.K {
			return fmt.Errorf("snapshot: batch %d has %d rows, want K=%d", i, len(b.Images), s.Sched.K)
		}
		if len(b.Gang) != gang {
			return fmt.Errorf("snapshot: batch %d gang size %d, want %d", i, len(b.Gang), gang)
		}
		if b.RealRows < 0 || b.RealRows > s.Sched.K {
			return fmt.Errorf("snapshot: batch %d real rows %d out of range", i, b.RealRows)
		}
	}
	for i := 1; i < len(s.Events); i++ {
		if s.Events[i].Seq <= s.Events[i-1].Seq {
			return fmt.Errorf("snapshot: event window not in ascending seq order at %d", i)
		}
	}
	return nil
}
