package obs

import (
	"path/filepath"
	"testing"
	"time"
)

// TestFlightRecorderWraparoundAudit audits the ring's ordering invariants
// across and beyond the wrap boundary: after any number of records, Dump
// is oldest-first with strictly consecutive sequence numbers ending at
// LastSeq, and Dropped accounts exactly for the overwritten prefix. This
// pins the two-slice wrap reassembly (buf[next:] + buf[:next]) at every
// phase — before the ring fills, at the exact fill point, and at
// arbitrary positions after multiple full laps.
func TestFlightRecorderWraparoundAudit(t *testing.T) {
	const cap = 5
	r := NewFlightRecorder(cap)
	for n := 1; n <= 4*cap+3; n++ {
		r.Record(Event{Kind: KindGrant, Subsystem: "audit", Device: n, Slot: -1})
		events := r.Dump()
		wantLen := n
		if wantLen > cap {
			wantLen = cap
		}
		if len(events) != wantLen {
			t.Fatalf("after %d records: len %d, want %d", n, len(events), wantLen)
		}
		if r.Dropped() != int64(n-wantLen) {
			t.Fatalf("after %d records: dropped %d, want %d", n, r.Dropped(), n-wantLen)
		}
		for i, e := range events {
			want := int64(n - wantLen + i + 1)
			if e.Seq != want {
				t.Fatalf("after %d records: dump[%d].Seq = %d, want %d (oldest-first, consecutive)", n, i, e.Seq, want)
			}
			if e.Device != int(e.Seq) {
				t.Fatalf("after %d records: seq %d carries payload %d — slot reuse corrupted an entry", n, e.Seq, e.Device)
			}
		}
		if last := events[len(events)-1].Seq; last != r.LastSeq() {
			t.Fatalf("after %d records: newest dumped seq %d != LastSeq %d", n, last, r.LastSeq())
		}
	}
}

// minimalSnapshot builds the smallest snapshot Validate accepts.
func minimalSnapshot() *Snapshot {
	return &Snapshot{
		Version:    SnapshotVersion,
		CapturedAt: time.Unix(1_700_000_000, 0),
		Sched:      SchedInfo{K: 2, Collusion: 1, Redundancy: 1},
		Model:      ModelInfo{Name: "m", InShape: []int{1, 2, 2}, Classes: 2, WeightHash: "fnv1a:0:0"},
		Cluster:    ClusterInfo{Size: 4},
		Fleet: FleetInfo{
			Config: FleetConfigInfo{Tenants: map[string]float64{"default": 1}},
			Devices: []DeviceInfo{
				{Index: 0, State: "healthy"}, {Index: 1, State: "healthy"},
				{Index: 2, State: "healthy"}, {Index: 3, State: "healthy"},
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := minimalSnapshot()
	snap.Batches = []BatchRecord{{
		Seq:      1,
		Tenant:   "default",
		RealRows: 1,
		Gang:     []int{0, 1, 2, 3},
		Images:   [][]float64{{0.1, 0.2, 0.3, 0.4}, {0.5, 0.6, 0.7, 0.8}},
		Classes:  []int{1, 0},
	}}
	snap.Events = []Event{
		{Seq: 1, Kind: KindGrant, Subsystem: "fleet", Device: -1, Slot: -1},
		{Seq: 2, Kind: KindQuarantine, Subsystem: "fleet", Device: 2, Slot: -1},
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := SaveSnapshot(snap, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != SnapshotVersion || len(got.Batches) != 1 || len(got.Events) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Batches[0].Images[1][3] != 0.8 {
		t.Fatal("image rows corrupted")
	}
	if got.Events[1].Kind != KindQuarantine || got.Events[1].Device != 2 {
		t.Fatalf("events corrupted: %+v", got.Events)
	}
}

func TestSnapshotValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Snapshot)
	}{
		{"wrong version", func(s *Snapshot) { s.Version = SnapshotVersion + 1 }},
		{"no K", func(s *Snapshot) { s.Sched.K = 0 }},
		{"bad device state", func(s *Snapshot) { s.Fleet.Devices[1].State = "wobbly" }},
		{"lease count mismatch", func(s *Snapshot) { s.Fleet.LeasedDevices = 3 }},
		{"lease/in-flight imbalance", func(s *Snapshot) {
			s.Fleet.Devices[0].Leased = true
			s.Fleet.LeasedDevices = 1
			// no tenant in-flight devices, no borrowed spares: inconsistent
		}},
		{"bad batch geometry", func(s *Snapshot) {
			s.Batches = []BatchRecord{{Seq: 1, Tenant: "default", RealRows: 1,
				Gang: []int{0, 1, 2, 3}, Images: [][]float64{{1}}}} // 1 row, K=2
		}},
		{"events out of order", func(s *Snapshot) {
			s.Events = []Event{{Seq: 5, Device: -1, Slot: -1}, {Seq: 4, Device: -1, Slot: -1}}
		}},
	}
	for _, tc := range cases {
		s := minimalSnapshot()
		tc.break_(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: Validate accepted a broken snapshot", tc.name)
		}
	}
	if err := minimalSnapshot().Validate(); err != nil {
		t.Fatalf("minimal snapshot rejected: %v", err)
	}
}
