// Package replay reconstructs a synthetic DarKnight cluster from a state
// snapshot and re-runs the captured batch window deterministically — the
// second half of snapshot-to-replay incident debugging.
//
// Determinism argument. Decoding over F_p is exact, so a batch's decoded
// classes are a pure function of the model weights and the K input rows
// (dummy pads included); the masking noise is decoded out exactly, which
// makes the TEE's noise RNG irrelevant to outputs. Per-device fault
// schedules (gpu.FaultPolicy counters and seeded private RNGs) reproduce
// because the batch log is appended before each grant's release: a device
// freed by grant A cannot serve batch B until A is already logged, so
// each device's log-order job sequence equals its live dispatch order,
// and replaying the log serially drives every fault counter through the
// same states.
//
// Fidelity limits (deliberate): speculation is timer-driven and additive
// — it never changes decoded outputs — so replay runs without it, and
// speculate events are excluded from comparison. Probation re-admission
// is disabled (fleet.ConfigFromSnapshot) because replay gangs are
// scripted from the batch log; live readmit/probation events are likewise
// excluded. Straggler wrappers are reconstructed so quorum membership
// matches the live run; classes are quorum-independent (MDS decode is
// exact from any quorum), but culprit attribution can only see a
// corruption whose response made the quorum — the chaos scenarios this
// harness gates keep tampering devices fast and stragglers covered by
// slack, where membership is stable.
package replay

import (
	"errors"
	"fmt"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/sched"
)

// Options tunes a replay run.
type Options struct {
	// RecorderSize sizes the replay-side flight recorder
	// (obs.DefaultRecorderSize when 0). Size it to hold the whole window:
	// a wrapped replay recorder voids the event comparison.
	RecorderSize int
	// Logf, when set, receives progress lines (e.g. testing.T.Logf).
	Logf func(format string, args ...any)
}

// Report is the outcome of one replay run.
type Report struct {
	// Batches is the number of batch records replayed; Matched counts
	// those whose outcome (classes, culprits, error presence) reproduced
	// bit-identically.
	Batches int
	Matched int
	// Mismatches holds one human-readable line per divergence (batch
	// outcomes and event projections alike). Empty means the incident
	// replayed deterministically.
	Mismatches []string

	// EventsCompared reports whether the event projections were checked:
	// it requires a complete window (no batches or events dropped by the
	// live rings) and a replay recorder that did not wrap.
	EventsCompared bool
	// QuarantineLive/QuarantineReplay are the per-run quarantine
	// projections: device indices in first-quarantine order.
	QuarantineLive   []int
	QuarantineReplay []int
	// IntegrityLive/IntegrityReplay and RefillLive/RefillReplay are the
	// window's integrity-verdict and cache-refill event counts.
	IntegrityLive   int
	IntegrityReplay int
	RefillLive      int
	RefillReplay    int
}

// OK reports whether the replay reproduced the captured incident.
func (r *Report) OK() bool { return len(r.Mismatches) == 0 }

// Summary renders the report as one line.
func (r *Report) Summary() string {
	if r.OK() {
		ev := "events not compared (incomplete window)"
		if r.EventsCompared {
			ev = fmt.Sprintf("quarantines %v, %d integrity events", r.QuarantineReplay, r.IntegrityReplay)
		}
		return fmt.Sprintf("replay OK: %d/%d batches bit-identical; %s", r.Matched, r.Batches, ev)
	}
	return fmt.Sprintf("replay DIVERGED: %d/%d batches matched, %d mismatches (first: %s)",
		r.Matched, r.Batches, len(r.Mismatches), r.Mismatches[0])
}

// Run rebuilds the captured cluster, fleet, and inference engine from a
// snapshot and replays its batch log, comparing outcomes and event
// projections against the capture. The model must be the architecture the
// snapshot was taken from; its weights are overwritten from the snapshot
// when embedded, otherwise verified by hash.
func Run(snap *obs.Snapshot, model *nn.Model, opts Options) (*Report, error) {
	if err := snap.Validate(); err != nil {
		return nil, fmt.Errorf("replay: invalid snapshot: %w", err)
	}
	if model == nil {
		return nil, errors.New("replay: nil model")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := restoreWeights(snap, model); err != nil {
		return nil, err
	}

	cluster, err := buildCluster(snap.Cluster)
	if err != nil {
		return nil, err
	}
	rec := obs.NewFlightRecorder(opts.RecorderSize)
	fm := fleet.NewManager(cluster, fleet.ConfigFromSnapshot(snap.Fleet.Config))
	fm.SetObserver(rec)

	sc := sched.Config{
		VirtualBatch:   snap.Sched.K,
		Collusion:      snap.Sched.Collusion,
		Redundancy:     snap.Sched.Redundancy,
		StragglerSlack: snap.Sched.StragglerSlack,
		FuseBlocks:     snap.Sched.FuseBlocks,
		FracBits:       snap.Sched.FracBits,
		NormLimit:      snap.Sched.NormLimit,
		Seed:           snap.Sched.Seed,
	}
	inf, err := sched.NewInferencer(sc, model, nil, "replay/")
	if err != nil {
		return nil, fmt.Errorf("replay: rebuilding inferencer: %w", err)
	}
	defer inf.Close()
	if snap.Serving.Recover {
		if err := inf.EnableRecovery(); err != nil {
			return nil, fmt.Errorf("replay: enabling recovery: %w", err)
		}
	}
	inf.SetObserver(rec)

	rep := &Report{Batches: len(snap.Batches)}
	logf("replay: %d batches over %d devices (gang %d)", len(snap.Batches), cluster.Size(), inf.Gang())
	for _, b := range snap.Batches {
		if err := replayBatch(fm, inf, b, rep); err != nil {
			return nil, err
		}
	}

	compareEvents(snap, rec, rep)
	logf("replay: %s", rep.Summary())
	return rep, nil
}

// restoreWeights loads the snapshot's embedded weights into the model (or,
// when only a hash was captured, verifies the model already matches).
func restoreWeights(snap *obs.Snapshot, model *nn.Model) error {
	params := model.Params()
	if len(snap.Model.Weights) > 0 {
		want := 0
		for _, p := range params {
			want += len(p.W.Data)
		}
		if want != len(snap.Model.Weights) {
			return fmt.Errorf("replay: snapshot embeds %d weights, model %q has %d",
				len(snap.Model.Weights), snap.Model.Arch, want)
		}
		off := 0
		for _, p := range params {
			off += copy(p.W.Data, snap.Model.Weights[off:off+len(p.W.Data)])
		}
	}
	if snap.Model.WeightHash == "" {
		return nil
	}
	var flat []float64
	for _, p := range params {
		flat = append(flat, p.W.Data...)
	}
	if got := obs.HashWeights(flat); got != snap.Model.WeightHash {
		return fmt.Errorf("replay: model weight hash %s does not match snapshot %s — wrong arch or seed (snapshot: arch %q seed %d)",
			got, snap.Model.WeightHash, snap.Model.Arch, snap.Model.Seed)
	}
	return nil
}

// buildCluster reassembles the captured device composition: honest
// devices, the recorded fault policies, and the recorded straggler
// delays, all at their original indices.
func buildCluster(ci obs.ClusterInfo) (*gpu.Cluster, error) {
	devs := make([]gpu.Device, ci.Size)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
	}
	for _, md := range ci.Malicious {
		if md.Index < 0 || md.Index >= len(devs) {
			return nil, fmt.Errorf("replay: malicious device index %d outside cluster of %d", md.Index, len(devs))
		}
		devs[md.Index] = gpu.NewMalicious(devs[md.Index], gpu.FaultPolicy{
			EveryNth:    md.EveryNth,
			Offset:      md.Offset,
			Probability: md.Probability,
			Seed:        md.Seed,
		})
	}
	for _, sd := range ci.Slow {
		if sd.Index < 0 || sd.Index >= len(devs) {
			return nil, fmt.Errorf("replay: slow device index %d outside cluster of %d", sd.Index, len(devs))
		}
		devs[sd.Index] = gpu.NewSlow(devs[sd.Index], time.Duration(sd.DelayNs))
	}
	return gpu.NewCluster(devs...), nil
}

// replayBatch re-runs one captured batch on its recorded gang slots and
// folds the outcome comparison into the report. Fault reporting mirrors
// the serving workers' reportOutcome so the health tracker sees the same
// verdicts the live fleet did.
func replayBatch(fm *fleet.Manager, inf *sched.Inferencer, b obs.BatchRecord, rep *Report) error {
	grant, err := fm.AcquireSlots(b.Tenant, b.Gang)
	if err != nil {
		return fmt.Errorf("replay: batch #%d: %w", b.Seq, err)
	}
	preds, perr := inf.Predict(grant, b.Images)
	culprits := inf.Culprits()
	reportOutcome(grant, culprits, perr)
	grant.Release()

	mismatch := func(format string, args ...any) {
		rep.Mismatches = append(rep.Mismatches,
			fmt.Sprintf("batch #%d (%s): %s", b.Seq, b.Tenant, fmt.Sprintf(format, args...)))
	}
	ok := true
	if (perr != nil) != (b.Err != "") {
		ok = false
		mismatch("live error %q, replay error %v", b.Err, perr)
	}
	if perr == nil && b.Err == "" && !equalInts(preds, b.Classes) {
		ok = false
		mismatch("classes diverged: live %v, replay %v", b.Classes, preds)
	}
	if !equalInts(culprits, b.Culprits) {
		ok = false
		mismatch("culprits diverged: live %v, replay %v", b.Culprits, culprits)
	}
	if ok {
		rep.Matched++
	}
	return nil
}

// reportOutcome mirrors the serving workers' fault reporting: attributed
// culprit slots quarantine, unattributable violations cast suspicion.
func reportOutcome(grant *fleet.Grant, culprits []int, err error) {
	if len(culprits) > 0 {
		grant.ReportFaults(culprits)
		return
	}
	if err == nil {
		return
	}
	var ie *sched.IntegrityError
	switch {
	case errors.As(err, &ie) && len(ie.Culprits) > 0:
		grant.ReportFaults(ie.Culprits)
	case errors.Is(err, masking.ErrIntegrity):
		grant.ReportSuspect()
	}
}

// compareEvents checks the replay's event projections against the
// captured window: the quarantine sequence (device indices in
// first-quarantine order — live readmissions can re-quarantine a device,
// so only the first transition is deterministic under scripted gangs),
// and the integrity/refill counts. Requires a complete capture (nothing
// dropped by the live rings) and an unwrapped replay recorder; otherwise
// the comparison is skipped and EventsCompared stays false.
func compareEvents(snap *obs.Snapshot, rec *obs.FlightRecorder, rep *Report) {
	replayEvents := rec.Dump()
	rep.QuarantineLive = quarantineProjection(snap.Events)
	rep.QuarantineReplay = quarantineProjection(replayEvents)
	rep.IntegrityLive = countKind(snap.Events, obs.KindIntegrity)
	rep.IntegrityReplay = countKind(replayEvents, obs.KindIntegrity)
	rep.RefillLive = countKind(snap.Events, obs.KindRefill)
	rep.RefillReplay = countKind(replayEvents, obs.KindRefill)
	if snap.EventsDropped != 0 || snap.BatchesDropped != 0 || rec.Dropped() != 0 {
		return
	}
	rep.EventsCompared = true
	if !equalInts(rep.QuarantineReplay, rep.QuarantineLive) {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"quarantine sequence diverged: live %v, replay %v", rep.QuarantineLive, rep.QuarantineReplay))
	}
	if rep.IntegrityReplay != rep.IntegrityLive {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"integrity event count diverged: live %d, replay %d", rep.IntegrityLive, rep.IntegrityReplay))
	}
	if rep.RefillReplay != rep.RefillLive {
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"refill event count diverged: live %d, replay %d", rep.RefillLive, rep.RefillReplay))
	}
}

// quarantineProjection extracts device indices in first-quarantine order.
func quarantineProjection(events []obs.Event) []int {
	seen := make(map[int]bool)
	var out []int
	for _, e := range events {
		if e.Kind == obs.KindQuarantine && e.Device >= 0 && !seen[e.Device] {
			seen[e.Device] = true
			out = append(out, e.Device)
		}
	}
	return out
}

func countKind(events []obs.Event, kind string) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TB is the subset of testing.TB the test helper needs — a local
// interface so importing this package does not drag in testing.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Logf(format string, args ...any)
}

// ReplaySnapshot loads a snapshot file and replays it against the given
// model, failing the test on any divergence. It returns the report so
// tests can make further assertions.
func ReplaySnapshot(t TB, path string, model *nn.Model) *Report {
	t.Helper()
	snap, err := obs.LoadSnapshot(path)
	if err != nil {
		t.Fatalf("replay: loading snapshot %s: %v", path, err)
	}
	rep, err := Run(snap, model, Options{Logf: t.Logf, RecorderSize: len(snap.Events) + 16*len(snap.Batches) + 64})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("replay: %s\nall mismatches:\n  %s", rep.Summary(), joinLines(rep.Mismatches))
	}
	return rep
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
