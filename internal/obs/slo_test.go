package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable SLO clock tests advance by hand.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func burnOf(brs []BurnRate, slo string) float64 {
	for _, br := range brs {
		if br.SLO == slo {
			return br.Burn
		}
	}
	return -1
}

// TestSLOBurnRiseAndRecover pins the acceptance behavior: the burn rate
// rises above the threshold while injected latency pushes requests past
// the target, the breach hook fires once (edge-triggered), and once the
// slow samples age out of the window the burn returns below threshold and
// the clear event fires.
func TestSLOBurnRiseAndRecover(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{
		Objectives: []SLOObjective{{Tenant: "*", LatencyTarget: 10 * time.Millisecond, LatencyGoal: 0.9, ErrorBudget: 0.1}},
		Windows:    []time.Duration{time.Second},
		Now:        clk.now,
	})
	var events []Breach
	tr.OnBreach(func(b Breach) { events = append(events, b) })

	// Healthy traffic: all requests meet the target, burn 0.
	for i := 0; i < 20; i++ {
		tr.Observe("gold", time.Millisecond, false)
		clk.advance(10 * time.Millisecond)
	}
	if burn := burnOf(tr.BurnRates(), "latency"); burn != 0 {
		t.Fatalf("healthy burn = %v, want 0", burn)
	}
	if len(events) != 0 {
		t.Fatalf("healthy traffic fired %d breach events", len(events))
	}

	// Injected latency: every request blows the 10ms target. The bad
	// fraction heads to 1.0, so the latency burn heads to 1/(1-0.9) = 10.
	for i := 0; i < 30; i++ {
		tr.Observe("gold", 50*time.Millisecond, false)
		clk.advance(10 * time.Millisecond)
	}
	if burn := burnOf(tr.BurnRates(), "latency"); burn < 1 {
		t.Fatalf("burn under injected latency = %v, want >= 1", burn)
	}
	var rises int
	for _, e := range events {
		if !e.Cleared {
			rises++
			if e.SLO != "latency" || e.Tenant != "gold" {
				t.Fatalf("unexpected breach %+v", e)
			}
		}
	}
	if rises != 1 {
		t.Fatalf("edge-triggered hook fired %d rising events, want exactly 1", rises)
	}
	if tr.Breaches() != 1 {
		t.Fatalf("Breaches() = %d, want 1", tr.Breaches())
	}

	// Recovery: fast requests again. After the window slides past the slow
	// burst the burn falls below threshold and the clear event fires.
	for i := 0; i < 150; i++ {
		tr.Observe("gold", time.Millisecond, false)
		clk.advance(10 * time.Millisecond)
	}
	if burn := burnOf(tr.BurnRates(), "latency"); burn >= 1 {
		t.Fatalf("burn after recovery = %v, want < 1", burn)
	}
	var clears int
	for _, e := range events {
		if e.Cleared && e.SLO == "latency" {
			clears++
		}
	}
	if clears != 1 {
		t.Fatalf("clear events = %d, want exactly 1", clears)
	}
	if tr.Breaches() != 1 {
		t.Fatalf("Breaches() after recovery = %d, want still 1 (clears are not breaches)", tr.Breaches())
	}
}

// TestSLOErrorBudgetBurn pins the error-rate SLO arithmetic: failure
// fraction divided by the budget.
func TestSLOErrorBudgetBurn(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{
		Objectives: []SLOObjective{{Tenant: "api", ErrorBudget: 0.01}},
		Windows:    []time.Duration{time.Minute},
		Now:        clk.now,
	})
	for i := 0; i < 100; i++ {
		tr.Observe("api", time.Millisecond, i%10 == 0) // 10% failures
		clk.advance(time.Millisecond)
	}
	// 10% failures against a 1% budget: burn 10.
	if burn := burnOf(tr.BurnRates(), "errors"); burn < 9.9 || burn > 10.1 {
		t.Fatalf("error burn = %v, want ~10", burn)
	}
	// Failed requests count against the latency SLO too — but this
	// objective declares none, so only "errors" series exist.
	for _, br := range tr.BurnRates() {
		if br.SLO != "errors" {
			t.Fatalf("unexpected SLO series %q", br.SLO)
		}
	}
}

// TestSLOTenantFallback: explicit objectives win over "*", tenants with
// neither are not tracked.
func TestSLOTenantFallback(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{
		Objectives: []SLOObjective{
			{Tenant: "gold", LatencyTarget: 100 * time.Millisecond, LatencyGoal: 0.99},
			{Tenant: "*", LatencyTarget: time.Millisecond, LatencyGoal: 0.5},
		},
		Windows: []time.Duration{time.Minute},
		Now:     clk.now,
	})
	tr.Observe("gold", 10*time.Millisecond, false)   // meets gold's 100ms target
	tr.Observe("bronze", 10*time.Millisecond, false) // blows the wildcard 1ms target
	var goldBurn, bronzeBurn float64 = -1, -1
	for _, br := range tr.BurnRates() {
		switch br.Tenant {
		case "gold":
			goldBurn = br.Burn
		case "bronze":
			bronzeBurn = br.Burn
		}
	}
	if goldBurn != 0 {
		t.Fatalf("gold burn = %v, want 0 (explicit objective)", goldBurn)
	}
	if bronzeBurn <= 0 {
		t.Fatalf("bronze burn = %v, want > 0 (wildcard objective)", bronzeBurn)
	}
}

// TestSLORegisterExportsGauges: the tracker's registry series render as
// darknight_slo_burn_rate{tenant,window,slo} plus the breach counter.
func TestSLORegisterExportsGauges(t *testing.T) {
	clk := newFakeClock()
	tr := NewSLOTracker(SLOConfig{
		Objectives: []SLOObjective{{Tenant: "*", LatencyTarget: time.Millisecond, LatencyGoal: 0.9}},
		Windows:    []time.Duration{30 * time.Second},
		Now:        clk.now,
	})
	r := NewRegistry()
	tr.Register(r)
	tr.Observe("gold", time.Second, false) // blows the target
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `darknight_slo_burn_rate{slo="latency",tenant="gold",window="30s"}`) {
		t.Fatalf("burn-rate gauge missing from exposition:\n%s", out)
	}
	if !strings.Contains(out, "darknight_slo_breaches_total 1") {
		t.Fatalf("breach counter missing from exposition:\n%s", out)
	}
}

// TestSLONilSafety: a nil tracker and a tracker without objectives are
// inert on the hot path.
func TestSLONilSafety(t *testing.T) {
	var tr *SLOTracker
	tr.Observe("x", time.Second, true) // must not panic
	tr.OnBreach(func(Breach) {})
	if tr.BurnRates() != nil || tr.Breaches() != 0 {
		t.Fatal("nil tracker not inert")
	}
	tr.Register(NewRegistry())

	empty := NewSLOTracker(SLOConfig{})
	empty.Observe("x", time.Second, true)
	if got := empty.BurnRates(); len(got) != 0 {
		t.Fatalf("objective-less tracker reported %v", got)
	}
}
