package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHTTPContentTypesAndMethodGuard pins the endpoint hardening: every
// endpoint declares a Content-Type and refuses non-GET methods with 405
// plus an Allow header.
func TestHTTPContentTypesAndMethodGuard(t *testing.T) {
	o := New(Options{TraceSample: 1, Seed: 1})
	ms, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	wantTypes := map[string]string{
		"/metrics":        "text/plain; version=0.0.4; charset=utf-8",
		"/metrics.json":   "application/json",
		"/traces":         "text/plain; charset=utf-8",
		"/flightrecorder": "application/json",
	}
	for path, ct := range wantTypes {
		resp, err := http.Get("http://" + ms.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != ct {
			t.Fatalf("GET %s Content-Type = %q, want %q", path, got, ct)
		}

		resp, err = http.Post("http://"+ms.Addr()+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != http.MethodGet {
			t.Fatalf("POST %s Allow = %q, want GET", path, got)
		}
	}

	// /snapshot without a provider: 404, not a panic.
	resp, err := http.Get("http://" + ms.Addr() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /snapshot without provider: status %d, want 404", resp.StatusCode)
	}
}

// slowFlusher blocks a /metrics scrape mid-write until released, so the
// test can catch Close with a scrape in flight.
type slowFlusher struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *slowFlusher) value() float64 {
	s.once.Do(func() { close(s.started) })
	<-s.release
	return 1
}

// TestHTTPGracefulClose: Close drains an in-flight scrape (the client
// gets a complete 200 response) instead of severing the connection.
func TestHTTPGracefulClose(t *testing.T) {
	o := New(Options{Seed: 1})
	sf := &slowFlusher{started: make(chan struct{}), release: make(chan struct{})}
	o.Reg().GaugeFunc("slow_gauge", "blocks until released", sf.value)
	ms, err := o.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		body string
		code int
		err  error
	}
	done := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + ms.Addr() + "/metrics")
		if err != nil {
			done <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			done <- scrape{err: err}
			return
		}
		done <- scrape{body: string(b), code: resp.StatusCode}
	}()

	<-sf.started // the scrape is inside the handler now
	closed := make(chan struct{})
	go func() {
		ms.Close()
		close(closed)
	}()
	// Close must be waiting on the in-flight scrape, not done already.
	select {
	case <-closed:
		t.Fatal("Close returned while a scrape was still in flight")
	case <-time.After(50 * time.Millisecond):
	}
	// New connections are refused during the drain.
	if conn, err := net.DialTimeout("tcp", ms.Addr(), 200*time.Millisecond); err == nil {
		conn.Close()
		// Some platforms accept then reset; either way the request fails.
		if resp, err := http.Get("http://" + ms.Addr() + "/metrics"); err == nil {
			resp.Body.Close()
		}
	}
	close(sf.release)
	s := <-done
	if s.err != nil {
		t.Fatalf("in-flight scrape severed by Close: %v", s.err)
	}
	if s.code != http.StatusOK || !strings.Contains(s.body, "slow_gauge 1") {
		t.Fatalf("drained scrape incomplete: status %d body %q", s.code, s.body)
	}
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the scrape drained")
	}
	ms.Close() // idempotent
}

// TestBuildInfoAndUptime: the bundle pre-registers build metadata and an
// uptime gauge.
func TestBuildInfoAndUptime(t *testing.T) {
	o := New(Options{Seed: 1})
	var b strings.Builder
	if err := o.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "darknight_build_info{") ||
		!strings.Contains(out, fmt.Sprintf("version=%q", BuildVersion)) ||
		!strings.Contains(out, "goversion=") {
		t.Fatalf("build info missing:\n%s", out)
	}
	if !strings.Contains(out, "darknight_uptime_seconds") {
		t.Fatalf("uptime gauge missing:\n%s", out)
	}
	parsed, err := ParsePrometheus(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if up, ok := parsed["darknight_uptime_seconds"]; !ok || up < 0 {
		t.Fatalf("uptime = %v (present %v)", up, ok)
	}
}
