package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// MetricsServer is the HTTP listener exporting an Observability bundle:
//
//	/metrics           Prometheus text exposition
//	/metrics.json      the same registry as JSON (BENCH artifact shape)
//	/traces            recent completed span trees, rendered as text
//	/flightrecorder    the event ring as JSON
//	/snapshot          versioned state snapshot (when a provider is set)
//
// Every endpoint is GET-only (405 otherwise) and sets an explicit
// Content-Type. Close shuts down gracefully: in-flight scrapes drain
// before the listener dies.
type MetricsServer struct {
	lis net.Listener
	srv *http.Server
}

// getOnly wraps a handler, rejecting non-GET methods with 405 and
// stamping the Content-Type before the body is written.
func getOnly(contentType string, h func(w http.ResponseWriter, r *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", contentType)
		h(w, r)
	}
}

// Serve starts the metrics listener on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns once the listener is bound; serving runs in
// a background goroutine until Close.
func (o *Observability) Serve(addr string) (*MetricsServer, error) {
	if o == nil || o.Registry == nil {
		return nil, fmt.Errorf("obs: cannot serve metrics without a registry")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", getOnly("text/plain; version=0.0.4; charset=utf-8", func(w http.ResponseWriter, _ *http.Request) {
		_ = o.Registry.WritePrometheus(w)
	}))
	mux.HandleFunc("/metrics.json", getOnly("application/json", func(w http.ResponseWriter, _ *http.Request) {
		b, err := o.Registry.DumpJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	}))
	mux.HandleFunc("/traces", getOnly("text/plain; charset=utf-8", func(w http.ResponseWriter, _ *http.Request) {
		traces := o.Tracer.Recent()
		if len(traces) == 0 {
			fmt.Fprintln(w, "no completed traces (is -trace-sample > 0?)")
			return
		}
		for _, sp := range traces {
			sp.Render(w)
			sp.RenderBreakdown(w)
			fmt.Fprintln(w)
		}
	}))
	mux.HandleFunc("/flightrecorder", getOnly("application/json", func(w http.ResponseWriter, _ *http.Request) {
		_ = o.Recorder.WriteJSON(w)
	}))
	mux.HandleFunc("/snapshot", getOnly("application/json", func(w http.ResponseWriter, _ *http.Request) {
		provider := o.snapshotProvider()
		if provider == nil {
			http.Error(w, "no snapshot provider attached", http.StatusNotFound)
			return
		}
		snap, err := provider()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_ = snap.WriteJSON(w)
	}))
	ms := &MetricsServer{lis: lis, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = ms.srv.Serve(lis) }()
	return ms, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *MetricsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener gracefully: new connections are refused
// immediately, in-flight scrapes get up to five seconds to drain, then
// the server is torn down hard. Nil-safe and idempotent.
func (s *MetricsServer) Close() {
	if s == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		_ = s.srv.Close()
	}
}
