package obs

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// MetricsServer is the HTTP listener exporting an Observability bundle:
//
//	/metrics           Prometheus text exposition
//	/metrics.json      the same registry as JSON (BENCH artifact shape)
//	/traces            recent completed span trees, rendered as text
//	/flightrecorder    the event ring as JSON
type MetricsServer struct {
	lis net.Listener
	srv *http.Server
}

// Serve starts the metrics listener on addr (e.g. ":9090" or
// "127.0.0.1:0"). It returns once the listener is bound; serving runs in
// a background goroutine until Close.
func (o *Observability) Serve(addr string) (*MetricsServer, error) {
	if o == nil || o.Registry == nil {
		return nil, fmt.Errorf("obs: cannot serve metrics without a registry")
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		b, err := o.Registry.DumpJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(b)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		traces := o.Tracer.Recent()
		if len(traces) == 0 {
			fmt.Fprintln(w, "no completed traces (is -trace-sample > 0?)")
			return
		}
		for _, sp := range traces {
			sp.Render(w)
			sp.RenderBreakdown(w)
			fmt.Fprintln(w)
		}
	})
	mux.HandleFunc("/flightrecorder", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Recorder.WriteJSON(w)
	})
	ms := &MetricsServer{lis: lis, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = ms.srv.Serve(lis) }()
	return ms, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *MetricsServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// Close stops the listener. Nil-safe.
func (s *MetricsServer) Close() {
	if s == nil {
		return
	}
	_ = s.srv.Close()
}
