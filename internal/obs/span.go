package obs

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed segment of a request's life, forming a tree: the root
// covers the whole request, children cover admit→seal, the batch dispatch,
// and each offload's encode/dispatch/decode phases.
//
// Every method is a no-op on a nil receiver and Child returns nil from a
// nil parent, so an unsampled (nil) span flows through the entire stack
// at the cost of pointer checks — no allocations, no branches beyond the
// receiver test. Spans are handed between goroutines (client → batcher →
// worker), so mutation is mutex-guarded; the sampled path tolerates that
// cost by construction.
type Span struct {
	tracer *Tracer // non-nil on roots minted by a Tracer
	parent *Span
	name   string
	start  time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key, Value string
}

// Child opens a sub-span under s. Returns nil when s is nil, so disabled
// tracing propagates for free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{parent: s, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Annotate attaches a key/value pair to the span. No-op on nil.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotatef formats an annotation value. No-op on nil (callers that would
// pay to build the arguments should guard with `if s != nil`).
func (s *Span) Annotatef(key, format string, args ...any) {
	if s == nil {
		return
	}
	s.Annotate(key, fmt.Sprintf(format, args...))
}

// End closes the span, first closing any still-open descendants at the
// same instant — error paths may abandon phase children mid-flight, and
// ending the parent keeps the trace well formed. Ending a root minted by
// a Tracer files the completed trace into the tracer's recent ring.
// Idempotent; no-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.endAt(time.Now()) && s.tracer != nil && s.parent == nil {
		s.tracer.complete(s)
	}
}

// endAt stamps the end time (clamped to >= start) on s and every unended
// descendant, reporting whether s was open. Locks are taken parent→child
// only, matching Child's ordering.
func (s *Span) endAt(t time.Time) bool {
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return false
	}
	if t.Before(s.start) {
		t = s.start
	}
	s.end = t
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		c.endAt(t)
	}
	return true
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Parent returns the span's parent (nil for roots and nil receivers).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// Start returns when the span opened.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.end.IsZero()
}

// Duration is end−start for an ended span; for a live span, the time
// elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Attrs returns a copy of the span's annotations.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the first annotation with the given key
// ("" if absent).
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Children returns a copy of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// FindAll returns every span named name in the subtree, depth-first.
func (s *Span) FindAll(name string) []*Span {
	var out []*Span
	s.Walk(func(sp *Span) {
		if sp.name == name {
			out = append(out, sp)
		}
	})
	return out
}

// Walk visits s and every descendant depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children() {
		c.Walk(fn)
	}
}

// Breakdown decomposes the trace's critical path by span name: each
// span's self time (duration minus the time covered by its children,
// clamped at zero) is summed per name. For the serial per-request
// execution this stack produces, the result answers "where did this
// request spend its time" — queueing in admit, sealing, encode, GPU
// flight (dispatch), decode.
func (s *Span) Breakdown() map[string]time.Duration {
	if s == nil {
		return nil
	}
	out := make(map[string]time.Duration)
	s.Walk(func(sp *Span) {
		self := sp.Duration()
		for _, c := range sp.Children() {
			self -= c.Duration()
		}
		if self < 0 {
			self = 0
		}
		out[sp.name] += self
	})
	return out
}

// Render writes the span tree as an indented text dump: name, duration,
// and annotations per line.
func (s *Span) Render(w io.Writer) {
	s.render(w, 0)
}

// RenderString returns Render's output as a string ("" for nil).
func (s *Span) RenderString() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.Render(&b)
	return b.String()
}

func (s *Span) render(w io.Writer, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	fmt.Fprintf(w, "%s%s %s", strings.Repeat("  ", depth), s.name, s.Duration().Round(time.Microsecond))
	for _, a := range attrs {
		fmt.Fprintf(w, " %s=%s", a.Key, a.Value)
	}
	fmt.Fprintln(w)
	for _, c := range children {
		c.render(w, depth+1)
	}
}

// RenderBreakdown writes the per-name self-time decomposition, largest
// share first.
func (s *Span) RenderBreakdown(w io.Writer) {
	if s == nil {
		return
	}
	bd := s.Breakdown()
	names := make([]string, 0, len(bd))
	for n := range bd {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return bd[names[i]] > bd[names[j]] })
	total := s.Duration()
	fmt.Fprintf(w, "critical path (%s total):\n", total.Round(time.Microsecond))
	for _, n := range names {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(bd[n]) / float64(total)
		}
		fmt.Fprintf(w, "  %-18s %10s  %5.1f%%\n", n, bd[n].Round(time.Microsecond), pct)
	}
}

// Tracer mints sampled root spans and keeps a bounded ring of completed
// traces for dumping. A nil Tracer, or a sampling rate of zero, makes
// Start return nil spans — the disabled path.
type Tracer struct {
	sample float64
	keep   int

	rngMu sync.Mutex
	rng   *rand.Rand

	started   atomic.Int64 // sampling decisions taken
	traced    atomic.Int64 // roots actually sampled
	completed atomic.Int64 // roots ended

	mu     sync.Mutex
	recent []*Span // ring of completed roots, oldest first after rotation
	next   int
	full   bool
}

// NewTracer builds a tracer sampling the given fraction of Start calls
// and retaining the last keep (default 16) completed traces.
func NewTracer(sample float64, keep int, seed int64) *Tracer {
	if keep <= 0 {
		keep = 16
	}
	return &Tracer{
		sample: sample,
		keep:   keep,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// SampleRate returns the configured sampling fraction (0 on nil).
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return t.sample
}

// Start begins a root span, or returns nil when the tracer is nil, the
// rate is zero, or the sampling draw declines.
func (t *Tracer) Start(name string) *Span {
	if t == nil || t.sample <= 0 {
		return nil
	}
	t.started.Add(1)
	if t.sample < 1 {
		t.rngMu.Lock()
		keep := t.rng.Float64() < t.sample
		t.rngMu.Unlock()
		if !keep {
			return nil
		}
	}
	t.traced.Add(1)
	return &Span{tracer: t, name: name, start: time.Now()}
}

// complete files a finished root into the recent ring.
func (t *Tracer) complete(s *Span) {
	t.completed.Add(1)
	t.mu.Lock()
	if len(t.recent) < t.keep {
		t.recent = append(t.recent, s)
	} else {
		t.recent[t.next] = s
		t.next = (t.next + 1) % t.keep
		t.full = true
	}
	t.mu.Unlock()
}

// Recent returns the retained completed traces, oldest first.
func (t *Tracer) Recent() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]*Span(nil), t.recent...)
	}
	out := make([]*Span, 0, len(t.recent))
	out = append(out, t.recent[t.next:]...)
	out = append(out, t.recent[:t.next]...)
	return out
}

// Last returns the most recently completed trace, or nil.
func (t *Tracer) Last() *Span {
	r := t.Recent()
	if len(r) == 0 {
		return nil
	}
	return r[len(r)-1]
}

// Counts reports (sampling decisions, sampled roots, completed roots).
func (t *Tracer) Counts() (started, traced, completed int64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.started.Load(), t.traced.Load(), t.completed.Load()
}

// spanKey threads spans through context.Context.
type spanKey struct{}

// WithSpan returns a context carrying the span. A nil span is carried
// too — SpanFrom then returns nil, preserving the disabled path.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom extracts the span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}
