package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Event kinds emitted by the stack. Kind is an open string set — these
// constants are the vocabulary the serving stack uses today.
const (
	KindGrant      = "grant"          // gang granted to a tenant
	KindRelease    = "release"        // gang released back to the pool
	KindQuarantine = "quarantine"     // device Healthy/Probation → Quarantined
	KindProbation  = "probation"      // device released into probation
	KindReadmit    = "readmit"        // device promoted back to Healthy
	KindSpeculate  = "speculate"      // straggler re-dispatch to a spare
	KindRefill     = "refill"         // GPU cache miss → weight-store refill
	KindIntegrity  = "integrity"      // integrity verdict (attributed or suspect)
	KindNoisePool  = "noisepool-miss" // noise pool exhausted, inline fallback
	KindSLOBreach  = "slo-breach"     // SLO burn rate crossed the threshold (or cleared)
	KindBrownout   = "brownout"       // degradation controller changed its level
	KindShed       = "shed"           // admission control rejected a request
	KindRetry      = "retry"          // failed virtual batch re-dispatched onto a fresh gang
	KindHedge      = "hedge"          // speculative duplicate flight launched (or resolved)
	KindChaos      = "chaos"          // scripted fault-schedule action applied
)

// Event is one structured entry in the flight recorder. Seq and Time are
// stamped by Record; the rest is caller-supplied. Device and Slot use -1
// for "not applicable".
type Event struct {
	Seq       int64     `json:"seq"`
	Time      time.Time `json:"time"`
	Kind      string    `json:"kind"`
	Subsystem string    `json:"subsystem"`
	Device    int       `json:"device"`
	Slot      int       `json:"slot"`
	Tenant    string    `json:"tenant,omitempty"`
	Detail    string    `json:"detail,omitempty"`
}

// String renders one event as a log-style line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s [%s] %s", e.Seq, e.Time.Format("15:04:05.000000"), e.Subsystem, e.Kind)
	if e.Device >= 0 {
		fmt.Fprintf(&b, " dev=%d", e.Device)
	}
	if e.Slot >= 0 {
		fmt.Fprintf(&b, " slot=%d", e.Slot)
	}
	if e.Tenant != "" {
		fmt.Fprintf(&b, " tenant=%s", e.Tenant)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// FlightRecorder is a bounded ring of Events. Recording takes one short
// mutex hold and copies a value struct into preallocated storage — cheap
// enough for the grant/release path — and the ring discards the oldest
// entries once full, so it can run forever. All methods are no-ops (or
// return zero values) on a nil receiver.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []Event // ring storage, len == cap once full
	cap  int
	next int
	full bool
	seq  int64
}

// DefaultRecorderSize is the event capacity used when none is given.
const DefaultRecorderSize = 1024

// NewFlightRecorder builds a recorder holding up to size events
// (DefaultRecorderSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultRecorderSize
	}
	return &FlightRecorder{buf: make([]Event, 0, size), cap: size}
}

// Record appends one event, stamping Seq and Time. Device/Slot zero
// values are preserved; callers pass -1 for "not applicable".
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	ev.Time = now
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % r.cap
		r.full = true
	}
	r.mu.Unlock()
}

// Dump returns the retained events, oldest first.
func (r *FlightRecorder) Dump() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// DumpSince returns retained events with Seq > seq, oldest first.
func (r *FlightRecorder) DumpSince(seq int64) []Event {
	all := r.Dump()
	for i, e := range all {
		if e.Seq > seq {
			return all[i:]
		}
	}
	return nil
}

// LastSeq returns the sequence number of the newest event (0 if none).
func (r *FlightRecorder) LastSeq() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Len returns the number of retained events.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many events have been overwritten by the ring.
func (r *FlightRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq - int64(len(r.buf))
}

// WriteText writes the retained events as log-style lines.
func (r *FlightRecorder) WriteText(w io.Writer) {
	for _, e := range r.Dump() {
		fmt.Fprintln(w, e.String())
	}
}

// WriteJSON writes the retained events as a JSON array.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	events := r.Dump()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}

// FormatEvents renders a slice of events as one string, one line per
// event — the shape chaos tests dump on failure.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
