package perf

// Fig 3's aggregation model: training a large batch of B images with
// virtual batch K produces B/K sealed ▽W_v blobs (Algorithm 2). Aggregation
// time per large batch combines:
//
//   - backward decoding: each virtual batch folds S = K+M equations of
//     ParamElems field MACs, so the per-batch decode work scales like
//     (K+M)/K — decreasing in K;
//   - sealing: 2·ParamBytes per virtual batch (seal + unseal), so B/K
//     blobs amortize with K;
//   - EPC overflow: past the memory knee the working set pages.
//
// The speedup relative to K=1 therefore rises with K until the enclave
// working set outgrows the EPC — the Fig 3 shape.

// AggregationTime prices Algorithm 2 for one large batch.
func AggregationTime(p Profile, w Workload, c Coding, largeBatch int) float64 {
	k := float64(c.K)
	s := float64(c.S())
	b := float64(largeBatch)
	numVB := b / k

	decode := numVB * s * w.ParamElems / p.SGXFieldMACsPerSec
	seal := numVB * 2 * w.ParamElems * p.ElemBytes / p.SGXSealBytesPerSec
	perVBFixed := numVB * 0.002 // context setup per virtual batch

	total := decode + seal + perVBFixed
	// Training's enclave working set is larger than inference's (coded
	// inputs are retained for the backward pass): K+2 peak buffers. Past
	// the EPC the whole set thrashes on every layer of every virtual
	// batch — the Fig 3 collapse.
	workset := float64(c.K+2)*w.MaxLinInElems*p.ElemBytes + (16 << 20)
	if workset > p.EPCBytes {
		total += numVB * workset * w.LinLayers / p.SGXPagingBytesPerSec
	}
	return total
}

// AggregationSpeedup returns Fig 3's metric: T(K=1)/T(K).
func AggregationSpeedup(p Profile, w Workload, m, e, k, largeBatch int) float64 {
	base := AggregationTime(p, w, Coding{K: 1, M: m, E: e}, largeBatch)
	return base / AggregationTime(p, w, Coding{K: k, M: m, E: e}, largeBatch)
}
