package perf

import (
	"testing"

	"darknight/internal/nn"
)

func workloads() (vgg, res, mob, mobv1 Workload) {
	return NewWorkload(nn.VGG16Arch()), NewWorkload(nn.ResNet50Arch()),
		NewWorkload(nn.MobileNetV2Arch()), NewWorkload(nn.MobileNetV1Arch())
}

func TestTable1Calibration(t *testing.T) {
	// The profile encodes Table 1's measured GPU/SGX ratios; the forward
	// linear ratio must reproduce exactly, and the backward one through
	// the factor.
	p := Default()
	fwd := p.GPUMACsPerSec / p.SGXLinearMACsPerSec
	if fwd < 126 || fwd > 128 {
		t.Fatalf("forward linear ratio = %.2f, want ≈126.85", fwd)
	}
	bwd := p.GPUMACsPerSec / (p.SGXLinearMACsPerSec * p.SGXBwdLinearFactor)
	if bwd < 148 || bwd > 151 {
		t.Fatalf("backward linear ratio = %.2f, want ≈149.13", bwd)
	}
}

func TestWorkloadDerivation(t *testing.T) {
	vgg, _, _, _ := workloads()
	if vgg.LinMACs < 15e9 || vgg.LinMACs > 16e9 {
		t.Fatalf("VGG LinMACs = %g", vgg.LinMACs)
	}
	if vgg.ParamElems < 135e6 || vgg.ParamElems > 142e6 {
		t.Fatalf("VGG params = %g", vgg.ParamElems)
	}
	if vgg.MaxLinInElems != 64*224*224 {
		t.Fatalf("VGG max linear input = %g", vgg.MaxLinInElems)
	}
	if vgg.LinLayers != 16 {
		t.Fatalf("VGG linear layers = %g", vgg.LinLayers)
	}
}

func TestFig5TrainingSpeedupShape(t *testing.T) {
	// Paper Fig 5 non-pipelined: ≈8x VGG16, 4.2x ResNet50, 2.2x
	// MobileNetV2; pipelined strictly higher. We assert ordering and
	// coarse bands (shape, not absolute numbers).
	p := Default()
	vgg, res, mob, _ := workloads()
	c := Coding{K: 2, M: 1}

	speedup := func(w Workload, pipelined bool) float64 {
		return BaselineSGXTrain(p, w).Total() / DarKnightTrain(p, w, c, pipelined).Total()
	}

	sv, sr, sm := speedup(vgg, false), speedup(res, false), speedup(mob, false)
	if !(sv > sr && sr > sm) {
		t.Fatalf("non-pipelined ordering violated: vgg %.1f res %.1f mob %.1f", sv, sr, sm)
	}
	if sv < 4 || sv > 20 {
		t.Fatalf("VGG speedup %.1f outside [4,20] (paper ≈8)", sv)
	}
	if sr < 2 || sr > 9 {
		t.Fatalf("ResNet speedup %.1f outside [2,9] (paper ≈4.2)", sr)
	}
	if sm < 1.2 || sm > 5 {
		t.Fatalf("MobileNet speedup %.1f outside [1.2,5] (paper ≈2.2)", sm)
	}

	for _, w := range []Workload{vgg, res, mob} {
		if !(speedup(w, true) > speedup(w, false)) {
			t.Fatalf("%s: pipelined not faster than non-pipelined", w.Name)
		}
	}
}

func TestTable3BreakdownShape(t *testing.T) {
	// Baseline is linear-dominated; DarKnight shifts weight to TEE
	// non-linear work, with meaningful encode/decode and communication
	// shares (Table 3).
	p := Default()
	vgg, res, mob, _ := workloads()
	c := Coding{K: 2, M: 1}

	for _, w := range []Workload{vgg, res, mob} {
		base := BaselineSGXTrain(p, w).Fractions()
		dk := DarKnightTrain(p, w, c, false).Fractions()
		if base.Linear < 0.3 {
			t.Fatalf("%s baseline linear fraction %.2f < 0.3", w.Name, base.Linear)
		}
		if dk.Linear > 0.15 {
			t.Fatalf("%s DarKnight linear fraction %.2f > 0.15 (GPU should absorb it)", w.Name, dk.Linear)
		}
		if dk.NonLinear < 0.3 {
			t.Fatalf("%s DarKnight nonlinear fraction %.2f < 0.3", w.Name, dk.NonLinear)
		}
		if dk.Comm <= 0 || dk.Comm > 0.5 {
			t.Fatalf("%s DarKnight comm fraction %.2f outside (0,0.5]", w.Name, dk.Comm)
		}
	}
	// VGG's encode/decode share is the largest of the three (Table 3:
	// 0.19 vs 0.01 and 0.08).
	dkVGG := DarKnightTrain(p, vgg, c, false).Fractions()
	dkRes := DarKnightTrain(p, res, c, false).Fractions()
	if dkVGG.EncodeDecode <= dkRes.EncodeDecode {
		t.Fatalf("VGG encdec %.3f should exceed ResNet %.3f", dkVGG.EncodeDecode, dkRes.EncodeDecode)
	}
}

func TestTable4NonPrivateSpeedups(t *testing.T) {
	// Table 4: 3 unprotected GPUs vs SGX-only ≈ 273/217/80; vs DarKnight
	// ≈ 24/41/28. Assert coarse bands and the >>1 relationships.
	p := Default()
	vgg, res, mob, _ := workloads()
	c := Coding{K: 2, M: 1}
	for _, row := range []struct {
		w                    Workload
		overSGXLo, overSGXHi float64
		overDKLo, overDKHi   float64
	}{
		{vgg, 100, 800, 10, 120},
		{res, 80, 800, 10, 200},
		{mob, 30, 500, 10, 250},
	} {
		gpuTime := NonPrivateGPUTrain(p, row.w, 3)
		overSGX := BaselineSGXTrain(p, row.w).Total() / gpuTime
		overDK := DarKnightTrain(p, row.w, c, false).Total() / gpuTime
		if overSGX < row.overSGXLo || overSGX > row.overSGXHi {
			t.Fatalf("%s: non-private/SGX speedup %.0f outside [%g,%g]",
				row.w.Name, overSGX, row.overSGXLo, row.overSGXHi)
		}
		if overDK < row.overDKLo || overDK > row.overDKHi {
			t.Fatalf("%s: non-private/DarKnight speedup %.0f outside [%g,%g]",
				row.w.Name, overDK, row.overDKLo, row.overDKHi)
		}
	}
}

func TestFig6aInferenceComparison(t *testing.T) {
	// Fig 6a (VGG16): DarKnight(4) ≈ 15x over SGX and ≈1.3x over Slalom;
	// integrity variants cost some of it back.
	p := Default()
	vgg, _, _, mobv1 := workloads()

	for _, w := range []Workload{vgg, mobv1} {
		sgx := SGXInference(p, w)
		slalom := SlalomInference(p, w, false)
		dk4 := DarKnightInference(p, w, Coding{K: 4, M: 1})
		slalomI := SlalomInference(p, w, true)
		dk3I := DarKnightInference(p, w, Coding{K: 3, M: 1, E: 1})

		if !(sgx > slalom && sgx > dk4) {
			t.Fatalf("%s: SGX baseline should be slowest", w.Name)
		}
		if !(slalomI > slalom) {
			t.Fatalf("%s: Slalom integrity should cost time", w.Name)
		}
		if !(dk3I > dk4) {
			t.Fatalf("%s: DarKnight integrity should cost time", w.Name)
		}
		sp := sgx / dk4
		if w.Name == "VGG16" && (sp < 4 || sp > 40) {
			t.Fatalf("VGG DarKnight(4) speedup %.1f outside [4,40] (paper ≈15)", sp)
		}
		if !(sgx/dk4 > sgx/slalom*0.9) {
			t.Fatalf("%s: DarKnight(4) should be competitive with Slalom", w.Name)
		}
	}
}

func TestFig6bVirtualBatchKnee(t *testing.T) {
	// Fig 6b: total inference speedup over DarKnight(1) improves with K
	// up to 4, then DEGRADES at 6 when the working set overflows the EPC.
	p := Default()
	vgg, _, _, _ := workloads()
	base := DarKnightInference(p, vgg, Coding{K: 1, M: 1})
	speedup := func(k int) float64 {
		return base / DarKnightInference(p, vgg, Coding{K: k, M: 1})
	}
	s2, s4, s6 := speedup(2), speedup(4), speedup(6)
	if !(s2 > 1) {
		t.Fatalf("K=2 speedup %.3f <= 1", s2)
	}
	if !(s4 > s2) {
		t.Fatalf("K=4 (%.3f) should beat K=2 (%.3f)", s4, s2)
	}
	if !(s6 < s4) {
		t.Fatalf("K=6 (%.3f) should DEGRADE vs K=4 (%.3f) — EPC knee", s6, s4)
	}
	// Per-op categories: decode (unblinding) speedup grows with K; ReLU
	// and MaxPool are K-invariant.
	ops1 := DarKnightInferenceOps(p, vgg, Coding{K: 1, M: 1})
	ops4 := DarKnightInferenceOps(p, vgg, Coding{K: 4, M: 1})
	if !(ops1.Unblinding/ops4.Unblinding > 1.3) {
		t.Fatalf("unblinding speedup %.2f too small", ops1.Unblinding/ops4.Unblinding)
	}
	if ops1.ReLU != ops4.ReLU || ops1.MaxPool != ops4.MaxPool {
		t.Fatal("ReLU/MaxPool cost should not depend on K")
	}
}

func TestFig3AggregationShape(t *testing.T) {
	// Fig 3: speedup over K=1 rises through K=2..4; VGG hits the EPC
	// knee by K=5 (the paper's "increasing a size of virtual batch at a
	// certain point will increase the latency").
	p := Default()
	vgg, res, mob, _ := workloads()
	for _, w := range []Workload{vgg, res, mob} {
		s := make(map[int]float64)
		for _, k := range []int{2, 3, 4, 5} {
			s[k] = AggregationSpeedup(p, w, 1, 0, k, 128)
			if s[k] <= 1 {
				t.Fatalf("%s K=%d aggregation speedup %.2f <= 1", w.Name, k, s[k])
			}
			if s[k] > 6 {
				t.Fatalf("%s K=%d aggregation speedup %.2f implausibly high", w.Name, k, s[k])
			}
		}
		if !(s[3] > s[2]) {
			t.Fatalf("%s: speedup should rise 2→3 (%.2f vs %.2f)", w.Name, s[2], s[3])
		}
		if !(s[4] > s[3]) {
			t.Fatalf("%s: speedup should rise 3→4 (%.2f vs %.2f)", w.Name, s[3], s[4])
		}
	}
	// The EPC knee: VGG's K=5 gain collapses relative to the trend.
	vgg5 := AggregationSpeedup(p, vgg, 1, 0, 5, 128)
	vgg4 := AggregationSpeedup(p, vgg, 1, 0, 4, 128)
	if !(vgg5 < vgg4) {
		t.Fatalf("VGG K=5 (%.2f) should fall below K=4 (%.2f) — EPC knee", vgg5, vgg4)
	}
}

func TestFig7MultithreadLatency(t *testing.T) {
	// Fig 7: per-thread training latency grows monotonically with SGX
	// thread count; 4 threads land several times slower than 1.
	p := Default()
	vgg, _, _, _ := workloads()
	l1 := SGXMultithreadLatency(p, vgg, 1)
	prev := l1
	for _, threads := range []int{2, 3, 4} {
		l := SGXMultithreadLatency(p, vgg, threads)
		if !(l > prev) {
			t.Fatalf("latency not monotone at %d threads", threads)
		}
		prev = l
	}
	ratio := prev / l1
	if ratio < 2 || ratio > 12 {
		t.Fatalf("4-thread latency ratio %.1f outside [2,12] (paper ≈6-7)", ratio)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{Linear: 1, NonLinear: 2, EncodeDecode: 1, Comm: 1, Paging: 0}
	if b.Total() != 5 {
		t.Fatalf("total = %v", b.Total())
	}
	f := b.Fractions()
	if f.NonLinear != 0.4 {
		t.Fatalf("fraction = %v", f.NonLinear)
	}
	if (Breakdown{}).Fractions().Total() != 0 {
		t.Fatal("zero breakdown fractions should be zero")
	}
}

func TestCodingHelpers(t *testing.T) {
	c := Coding{K: 4, M: 2, E: 1}
	if c.S() != 6 || c.Width() != 7 {
		t.Fatalf("S=%d width=%d", c.S(), c.Width())
	}
}
