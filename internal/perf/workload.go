package perf

import "darknight/internal/nn"

// Workload condenses an architecture into the aggregate quantities the time
// model prices. All element counts are per single example (forward pass
// geometry).
type Workload struct {
	Name string
	// LinMACs is the forward bilinear multiply-accumulate count.
	LinMACs float64
	// LinInElems / LinOutElems are the summed input/output element counts
	// of the bilinear layers (coded traffic and encode/decode work).
	LinInElems, LinOutElems float64
	// MaxLinInElems is the largest single bilinear-layer input (the peak
	// enclave buffer during streaming encode).
	MaxLinInElems float64
	// NonLinOps is the summed TEE-resident op count (ReLU elems, pooling
	// windows, batch-norm passes, residual adds).
	NonLinOps float64
	// ReLUOps and MaxPoolOps split out the Table 1 categories.
	ReLUOps, MaxPoolOps float64
	// ActElems is the total activation volume (paging traffic).
	ActElems float64
	// ParamElems is the model size (gradient traffic, sealing).
	ParamElems float64
	// LinLayers counts bilinear layers (per-transfer latency).
	LinLayers float64
}

// NewWorkload derives the aggregate workload from an architecture.
func NewWorkload(a *nn.Arch) Workload {
	w := Workload{Name: a.Name}
	for _, l := range a.Layers {
		switch l.Class {
		case nn.ClassLinear:
			w.LinMACs += float64(l.MACs)
			w.LinInElems += float64(l.InElems)
			w.LinOutElems += float64(l.OutElems)
			if v := float64(l.InElems); v > w.MaxLinInElems {
				w.MaxLinInElems = v
			}
			w.LinLayers++
		case nn.ClassReLU:
			w.ReLUOps += float64(l.MACs)
			w.NonLinOps += float64(l.MACs)
		case nn.ClassMaxPool:
			w.MaxPoolOps += float64(l.MACs)
			w.NonLinOps += float64(l.MACs)
		default: // BatchNorm, Other
			w.NonLinOps += float64(l.MACs)
		}
		w.ActElems += float64(l.OutElems)
		w.ParamElems += float64(l.Params)
	}
	return w
}
