// Package perf is the analytic performance model that converts operation
// counts (internal/nn.Arch) into execution times for the paper's hardware:
// an SGX-enabled Coffee Lake CPU, GTX 1080 Ti GPUs and 40 Gb/s InfiniBand.
// Absolute device rates are calibrated to the paper's own measurements
// (Table 1's per-op GPU/SGX speedups); the derived experiments — training
// breakdowns (Table 3), end-to-end speedups (Table 4, Fig 5), aggregation
// scaling (Fig 3), inference comparisons (Fig 6) and SGX multithreading
// (Fig 7) — then emerge from the model. DESIGN.md documents this hardware
// substitution.
package perf

// Profile holds the device and channel rates. All rates are per second.
type Profile struct {
	// GPUMACsPerSec is the accelerator's effective DNN MAC throughput
	// (GTX 1080 Ti ≈ 10 TFLOP/s peak, ~3e12 sustained MACs/s).
	GPUMACsPerSec float64
	// SGXLinearMACsPerSec is the enclave's linear-algebra throughput.
	// Calibrated so GPU/SGX ≈ 126.85 (Table 1 forward linear).
	SGXLinearMACsPerSec float64
	// SGXBwdLinearFactor scales SGX backward linear throughput down
	// relative to forward (Table 1: bwd speedup 149.13 vs fwd 126.85).
	SGXBwdLinearFactor float64
	// SGXFieldMACsPerSec is the enclave's F_p encode/decode throughput
	// (modular arithmetic is slower than float FMA).
	SGXFieldMACsPerSec float64
	// SGXElemsPerSec is the enclave's elementwise non-linear throughput
	// (ReLU, pooling windows, batch-norm passes).
	SGXElemsPerSec float64
	// GPUReLUFwdSpeedup / GPUReLUBwdSpeedup are the Table 1 ratios for
	// offloaded ReLU (used only by the non-private GPU baseline).
	GPUReLUFwdSpeedup float64
	GPUReLUBwdSpeedup float64
	// GPUMaxPoolFwdSpeedup / GPUMaxPoolBwdSpeedup likewise.
	GPUMaxPoolFwdSpeedup float64
	GPUMaxPoolBwdSpeedup float64
	// SGXPagingBytesPerSec is the effective throughput of moving data
	// across the EPC boundary (Merkle-tree encryption + versioning).
	SGXPagingBytesPerSec float64
	// SGXSealBytesPerSec is AES-GCM sealing throughput (Algorithm 2).
	SGXSealBytesPerSec float64
	// EPCBytes is the usable enclave page cache.
	EPCBytes float64
	// NetBytesPerSec is the TEE<->GPU link bandwidth (40 Gb/s InfiniBand).
	NetBytesPerSec float64
	// NetLatencySec is the per-transfer latency.
	NetLatencySec float64
	// ElemBytes is the wire size of one tensor element (quantized u32).
	ElemBytes float64
	// PerLayerOverheadSec is the fixed per-layer enclave cost (ECALL
	// transitions, buffer setup) paid once per virtual batch per encode
	// or decode phase. Its amortization over K is what makes larger
	// virtual batches pay off (Fig 6b).
	PerLayerOverheadSec float64
	// IntensityRefSGX / IntensityRefGPU are the arithmetic-intensity
	// (MACs per element touched) knees below which linear kernels become
	// memory-bound. Depthwise convolutions (MobileNet) fall far below
	// them — the reason MobileNet is the paper's worst case.
	IntensityRefSGX float64
	IntensityRefGPU float64
}

// Intensity is the workload's bilinear arithmetic intensity: MACs per
// element moved (inputs + outputs + weights).
func (w Workload) Intensity() float64 {
	den := w.LinInElems + w.LinOutElems + w.ParamElems
	if den == 0 {
		return 0
	}
	return w.LinMACs / den
}

// sgxLinEff discounts the SGX linear rate for memory-bound workloads.
func sgxLinEff(p Profile, w Workload) float64 {
	e := w.Intensity() / p.IntensityRefSGX
	if e > 1 {
		return 1
	}
	return e
}

// gpuLinEff discounts the GPU linear rate for memory-bound workloads.
func gpuLinEff(p Profile, w Workload) float64 {
	e := w.Intensity() / p.IntensityRefGPU
	if e > 1 {
		return 1
	}
	return e
}

// Default returns the profile calibrated to the paper's testbed.
func Default() Profile {
	return Profile{
		GPUMACsPerSec:        3.0e12,
		SGXLinearMACsPerSec:  3.0e12 / 126.85, // Table 1 fwd linear ratio
		SGXBwdLinearFactor:   126.85 / 149.13, // Table 1 bwd linear ratio
		SGXFieldMACsPerSec:   6.0e9,
		SGXElemsPerSec:       2.1e8,
		GPUReLUFwdSpeedup:    119.60,
		GPUReLUBwdSpeedup:    6.59,
		GPUMaxPoolFwdSpeedup: 11.86,
		GPUMaxPoolBwdSpeedup: 5.47,
		SGXPagingBytesPerSec: 6.0e8,
		SGXSealBytesPerSec:   1.1e9,
		EPCBytes:             93 << 20,
		NetBytesPerSec:       40e9 / 8, // 40 Gb/s
		NetLatencySec:        5e-6,
		ElemBytes:            4,
		PerLayerOverheadSec:  1.5e-3,
		IntensityRefSGX:      110, // just above VGG16's intensity (~94)
		IntensityRefGPU:      30,
	}
}

// Coding describes the masking configuration the time model prices.
type Coding struct {
	K int // virtual batch size
	M int // collusion tolerance (noise vectors)
	E int // redundancy for integrity
}

// S returns K+M, the primary code width.
func (c Coding) S() int { return c.K + c.M }

// Width returns S+E, the number of coded instances per tensor.
func (c Coding) Width() int { return c.K + c.M + c.E }
