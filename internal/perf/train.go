package perf

import "math"

// Breakdown is a per-image training (or inference) time split, in seconds.
// The categories follow Table 3: Linear is accelerator time, NonLinear is
// TEE-resident layer time, EncodeDecode is the masking overhead, Comm is
// TEE<->GPU traffic, Paging is EPC boundary cost (baseline only).
type Breakdown struct {
	Linear       float64
	NonLinear    float64
	EncodeDecode float64
	Comm         float64
	Paging       float64
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.Linear + b.NonLinear + b.EncodeDecode + b.Comm + b.Paging
}

// Fractions normalizes the components by the total.
func (b Breakdown) Fractions() Breakdown {
	t := b.Total()
	if t == 0 {
		return Breakdown{}
	}
	return Breakdown{
		Linear: b.Linear / t, NonLinear: b.NonLinear / t,
		EncodeDecode: b.EncodeDecode / t, Comm: b.Comm / t, Paging: b.Paging / t,
	}
}

// trainMACFactor: training runs forward (1x), input-gradient (1x) and
// weight-gradient (1x) bilinear passes.
const trainMACFactor = 3

// BaselineSGXTrain prices fully-enclaved training (the paper's baseline):
// every op runs at SGX rates and large working sets page through the EPC.
func BaselineSGXTrain(p Profile, w Workload) Breakdown {
	var b Breakdown
	rate := p.SGXLinearMACsPerSec * sgxLinEff(p, w)
	fwd := w.LinMACs / rate
	bwd := 2 * w.LinMACs / (rate * p.SGXBwdLinearFactor)
	b.Linear = fwd + bwd
	b.NonLinear = 2 * w.NonLinOps / p.SGXElemsPerSec
	// Feature maps cross the EPC boundary on the forward pass and again
	// on the backward pass (float32 tensors).
	b.Paging = 2 * 4 * w.ActElems / p.SGXPagingBytesPerSec
	return b
}

// DarKnightTrain prices the masked TEE+GPU pipeline per image for coding c.
// pipelined overlaps encode/communication with GPU execution (§7.1).
func DarKnightTrain(p Profile, w Workload, c Coding, pipelined bool) Breakdown {
	k := float64(c.K)
	s := float64(c.S())
	width := float64(c.Width())

	var b Breakdown
	// Every coded instance runs on its own GPU; the wall time is one
	// instance's worth of each of the three bilinear passes.
	b.Linear = trainMACFactor * w.LinMACs / (p.GPUMACsPerSec * gpuLinEff(p, w))

	// Non-linear layers run per example in the TEE (forward + backward).
	b.NonLinear = 2 * w.NonLinOps / p.SGXElemsPerSec

	// Encode/decode field work per virtual batch, amortized over K:
	//   forward encode:  width·K·LinIn     (X̄ = Σ α·x per coded vector)
	//   forward decode:  K·S·LinOut        (Y = Ȳ·A⁻¹)
	//   delta combine:   S·K·LinOut        (δ̄_j = Σ β·δ)
	//   backward decode: S·Params          (Σ γ_j·Eq_j)
	// plus the fixed per-layer enclave overhead (encode + decode phases).
	fieldMACs := width*k*w.LinInElems + k*s*w.LinOutElems +
		s*k*w.LinOutElems + s*w.ParamElems
	b.EncodeDecode = fieldMACs/p.SGXFieldMACsPerSec/k +
		2*w.LinLayers*p.PerLayerOverheadSec/k

	// Communication: pairwise TEE<->GPU links run concurrently, so the
	// wall time is ONE link's bytes. Per virtual batch each GPU receives
	// its coded input and delta, returns its coded output and Eq_j; the
	// uncoded input-gradient offload adds K instances spread over the
	// width GPUs.
	perGPUBytes := p.ElemBytes * (w.LinInElems + 2*w.LinOutElems + w.ParamElems +
		(k/width)*(w.LinInElems+w.LinOutElems))
	b.Comm = perGPUBytes/p.NetBytesPerSec/k +
		2*w.LinLayers*p.NetLatencySec

	if pipelined {
		// Encoding of the next virtual batch and the channel transfers
		// hide under GPU execution; the TEE's non-linear work cannot.
		hidden := b.Linear
		if b.Comm > hidden {
			hidden = b.Comm
		}
		if b.EncodeDecode > hidden {
			hidden = b.EncodeDecode
		}
		return Breakdown{NonLinear: b.NonLinear, Linear: hidden}
	}
	return b
}

// GPUDataParallelEff discounts ideal data-parallel scaling for gradient
// exchange and kernel-launch overheads.
const GPUDataParallelEff = 0.5

// NonPrivateGPUTrain prices unprotected data-parallel training on nGPUs
// (Table 4's reference point).
func NonPrivateGPUTrain(p Profile, w Workload, nGPUs int) float64 {
	linear := trainMACFactor * w.LinMACs / (p.GPUMACsPerSec * gpuLinEff(p, w))
	// Non-linear ops offloaded at the Table 1 GPU rates.
	gpuNonlin := 2 * w.NonLinOps / (p.SGXElemsPerSec * p.GPUReLUFwdSpeedup)
	perImage := linear + gpuNonlin
	return perImage / (float64(nGPUs) * GPUDataParallelEff)
}

// SGXMultithreadLatency models Fig 7: t concurrent SGX training threads
// contending for one memory-encryption engine. Per-thread latency is the
// compute time plus the serialized paging burst, which grows superlinearly
// with thread count as the shared EPC thrashes.
func SGXMultithreadLatency(p Profile, w Workload, threads int) float64 {
	base := BaselineSGXTrain(p, w)
	compute := base.Linear + base.NonLinear
	// A training thread's full paging footprint includes the weight and
	// gradient state, not just feature maps.
	paging1 := (2*4*w.ActElems + 8*w.ParamElems) / p.SGXPagingBytesPerSec
	t := float64(threads)
	// Thrashing exponent: beyond one thread, evictions of one thread's
	// pages invalidate another's, so effective paged bytes grow ~t^1.8.
	return compute + paging1*math.Pow(t, 1.8)
}
