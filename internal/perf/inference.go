package perf

// Inference-side time models for the Fig 6 comparisons. All results are
// seconds per image.

// SGXInference prices the fully-enclaved baseline (one forward pass).
func SGXInference(p Profile, w Workload) float64 {
	linear := w.LinMACs / (p.SGXLinearMACsPerSec * sgxLinEff(p, w))
	nonlin := w.NonLinOps / p.SGXElemsPerSec
	paging := 4 * w.ActElems / p.SGXPagingBytesPerSec
	return linear + nonlin + paging
}

// SlalomInference prices Slalom: GPU linear ops on blinded data, TEE
// blind/unblind with PRECOMPUTED factors streamed (encrypted) back into the
// enclave per layer, TEE non-linear ops. Slalom processes one image at a
// time, so its per-layer enclave overhead does not amortize. verify adds
// the Freivalds check — one extra random-projection pass on the GPU plus a
// TEE comparison.
func SlalomInference(p Profile, w Workload, verify bool) float64 {
	gpu := w.LinMACs / (p.GPUMACsPerSec * gpuLinEff(p, w))
	// Blind: one field add per input element; unblind: one subtract per
	// output element.
	blind := (w.LinInElems + w.LinOutElems) / p.SGXFieldMACsPerSec
	// The unblinding factors W·r live encrypted in untrusted memory and
	// re-enter the enclave every layer: decrypt at sealing throughput.
	factorLoad := p.ElemBytes * w.LinOutElems / p.SGXSealBytesPerSec
	nonlin := w.NonLinOps / p.SGXElemsPerSec
	comm := p.ElemBytes * (w.LinInElems + w.LinOutElems) / p.NetBytesPerSec
	overhead := 2 * w.LinLayers * p.PerLayerOverheadSec
	total := gpu + blind + factorLoad + nonlin + comm + overhead
	if verify {
		total += 0.25*w.LinMACs/p.GPUMACsPerSec + w.LinOutElems/p.SGXFieldMACsPerSec
	}
	return total
}

// DarKnightInference prices DarKnight's forward-only pipeline per image at
// coding c (Fig 6a uses K=4 without and K=3+E=1 with integrity). The
// per-layer enclave overhead amortizes over the K images of a virtual
// batch — the Fig 6b gain — while the encode/decode field work grows like
// (K+M)·(K+M+E)/K, and past the EPC knee the working set pages.
func DarKnightInference(p Profile, w Workload, c Coding) float64 {
	k := float64(c.K)
	width := float64(c.Width())
	s := float64(c.S())

	gpu := w.LinMACs / (p.GPUMACsPerSec * gpuLinEff(p, w))
	encdec := (width*s/k)*(w.LinInElems+w.LinOutElems)/p.SGXFieldMACsPerSec +
		2*w.LinLayers*p.PerLayerOverheadSec/k
	nonlin := w.NonLinOps / p.SGXElemsPerSec
	comm := p.ElemBytes*(w.LinInElems+w.LinOutElems)/p.NetBytesPerSec +
		w.LinLayers*p.NetLatencySec

	total := gpu + encdec + nonlin + comm
	if c.E > 0 {
		// Integrity: the redundant decode plus the extra coded instance's
		// traffic.
		total += s*w.LinOutElems/p.SGXFieldMACsPerSec/k +
			float64(c.E)*p.ElemBytes*(w.LinInElems+w.LinOutElems)/p.NetBytesPerSec/k
	}
	if over := inferenceWorkset(p, w, c) - p.EPCBytes; over > 0 {
		// EPC overflow: the oversized working set pages on every layer.
		total += over * w.LinLayers / p.SGXPagingBytesPerSec / k
	}
	return total
}

// inferenceWorkset is the enclave's peak buffer during streaming encode:
// K+1 copies of the largest layer input (quantized u32) plus fixed runtime
// overhead.
func inferenceWorkset(p Profile, w Workload, c Coding) float64 {
	const runtimeOverheadBytes = 16 << 20
	return float64(c.K+1)*w.MaxLinInElems*p.ElemBytes + runtimeOverheadBytes
}

// InferenceOpBreakdown splits DarKnight inference time into the Fig 6b
// categories: unblinding (decode), blinding (encode), ReLU, MaxPool.
type InferenceOpBreakdown struct {
	Unblinding, Blinding, ReLU, MaxPool, Total float64
}

// DarKnightInferenceOps prices the Fig 6b per-op categories per image.
// Blinding/unblinding carry half of the per-layer enclave overhead each;
// both amortize over K.
func DarKnightInferenceOps(p Profile, w Workload, c Coding) InferenceOpBreakdown {
	k := float64(c.K)
	width := float64(c.Width())
	s := float64(c.S())
	var o InferenceOpBreakdown
	o.Blinding = (width*s/k)*w.LinInElems/p.SGXFieldMACsPerSec +
		w.LinLayers*p.PerLayerOverheadSec/k
	o.Unblinding = (width*s/k)*w.LinOutElems/p.SGXFieldMACsPerSec +
		w.LinLayers*p.PerLayerOverheadSec/k
	o.ReLU = w.ReLUOps / p.SGXElemsPerSec
	o.MaxPool = w.MaxPoolOps / p.SGXElemsPerSec
	o.Total = DarKnightInference(p, w, c)
	return o
}
