package darknight

// PR5 benchmarks: what overlapped data-parallel training buys when a
// dispatch costs real device time. A synthetic per-dispatch latency is
// welded into every device (gpu.NewSlow), so the serial trainer pays it
// once per forward AND backward offload while the pipelined trainer hides
// one virtual batch's flights behind its neighbors' TEE work. Weights are
// pinned bit-identical separately (sched.TestTrainPipelineMatchesSerial);
// the win is enforced by TestTrainPipelineSpeedup and recorded in
// BENCH_PR5.json.

import (
	"math/rand"
	"testing"
	"time"

	"darknight/internal/dataset"
	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// trainThroughput trains one large batch of numVB K=2 virtual batches on a
// gang whose every device carries `delay` per-dispatch latency and returns
// virtual batches per second. depth <= 1 runs the serial Trainer; depth >=
// 2 runs the TrainPipeline with that many lanes over the same shared gang.
func trainThroughput(tb testing.TB, depth, numVB int, delay time.Duration) (float64, sched.PhaseStats) {
	tb.Helper()
	cfg := sched.Config{VirtualBatch: 2, Seed: 1}
	const gang = 3 // K + M = 2 + 1, E = 0
	devs := make([]gpu.Device, gang)
	for i := range devs {
		devs[i] = gpu.NewSlow(gpu.NewHonest(i), delay)
	}
	cluster := gpu.NewCluster(devs...)
	model := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(1)))
	batch := dataset.SyntheticCIFAR(rand.New(rand.NewSource(2)), numVB*cfg.VirtualBatch, 4, 1, 8, 8, 0.05).Items
	opt := nn.NewSGD(0.05, 0.9)

	if depth <= 1 {
		trn, err := sched.NewTrainer(cfg, model, cluster, nil)
		if err != nil {
			tb.Fatal(err)
		}
		start := time.Now()
		if _, _, err := trn.TrainLargeBatch(batch, opt, 0); err != nil {
			tb.Fatal(err)
		}
		return float64(numVB) / time.Since(start).Seconds(), trn.PhaseStats()
	}

	pipe, err := sched.NewTrainPipeline(cfg, model, nil, "btp/", depth)
	if err != nil {
		tb.Fatal(err)
	}
	defer pipe.Close()
	start := time.Now()
	if _, _, err := pipe.TrainLargeBatch(sched.SingleFleetSource{F: cluster}, batch, opt, 0); err != nil {
		tb.Fatal(err)
	}
	return float64(numVB) / time.Since(start).Seconds(), pipe.PhaseStats()
}

// TestTrainPipelineSpeedup enforces the tentpole win: with a synthetic 1ms
// per-dispatch device latency, the depth-2 training pipeline must reach at
// least 1.4x the serial trainer's throughput on the same gang (measured
// ~1.9x; the gate is conservative for noisy CI runners). Training pays the
// latency on the backward dispatch too, so the hidden flight time per
// virtual batch is double the inference pipeline's.
func TestTrainPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const delay = time.Millisecond
	best := 0.0
	for i := 0; i < 3 && best < 1.4; i++ {
		serial, _ := trainThroughput(t, 1, 12, delay)
		piped, _ := trainThroughput(t, 2, 12, delay)
		if x := piped / serial; x > best {
			best = x
		}
	}
	if best < 1.4 {
		t.Fatalf("train pipeline speedup %.2fx, want >= 1.4x over the serial trainer", best)
	}
	t.Logf("train pipeline speedup %.2fx", best)
}

// BenchmarkTrainPipeline measures serial vs pipelined TrainLargeBatch on
// identical slow gangs (1ms per-dispatch device latency) and reports the
// training overlap ratio and noise-pool hit rate.
func BenchmarkTrainPipeline(b *testing.B) {
	const delay = time.Millisecond
	var serial, piped float64
	var ph sched.PhaseStats
	for i := 0; i < b.N; i++ {
		serial, _ = trainThroughput(b, 1, 12, delay)
		piped, ph = trainThroughput(b, 2, 12, delay)
	}
	b.ReportMetric(serial, "serial-vb/s")
	b.ReportMetric(piped, "pipelined-vb/s")
	b.ReportMetric(piped/serial, "trainpipe-x")
	b.ReportMetric(ph.Overlap(), "overlap-ratio")
}
