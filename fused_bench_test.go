package darknight

// PR7 benchmarks: what fused-block gang flights buy when a dispatch costs
// real device time. DeepMLP's 7 bilinear layers fuse into 3 flights (two
// 3-layer blocks + the lone head), and a block flight's persistent device
// trips pay the per-dispatch launch latency once per block instead of once
// per layer — so with gpu.NewSlow devices the per-layer path pays 7 delay
// units per forward where the fused path pays 3. Bit-identity of the fused
// outputs is pinned separately (sched.TestFusedBlockMatchesPerLayer,
// sched.TestFusedFlightCount); the win is enforced by
// TestFusedOffloadSpeedup and recorded per GOMAXPROCS in BENCH_PR7.json.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// fusedForwardThroughput pushes `batches` K=2 virtual batches through the
// serial sched engine on a 3-device gang whose every device carries `delay`
// per-dispatch latency, with or without the fused-offload compile pass, and
// returns batches/second.
func fusedForwardThroughput(tb testing.TB, fuse bool, batches int, delay time.Duration) float64 {
	tb.Helper()
	cfg := sched.Config{VirtualBatch: 2, Collusion: 1, FuseBlocks: fuse, Seed: 1}
	const gang = 3 // K + M = 2 + 1, E = 0
	devs := make([]gpu.Device, gang)
	for i := range devs {
		devs[i] = gpu.NewSlow(gpu.NewHonest(i), delay)
	}
	cluster := gpu.NewCluster(devs...)
	model := nn.DeepMLP(1, 8, 8, 4, 16, rand.New(rand.NewSource(1)))
	trn, err := sched.NewTrainer(cfg, model, cluster, nil)
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	imgs := make([][][]float64, batches)
	for b := range imgs {
		imgs[b] = make([][]float64, cfg.VirtualBatch)
		for i := range imgs[b] {
			img := make([]float64, 64)
			for j := range img {
				img[j] = rng.Float64()
			}
			imgs[b][i] = img
		}
	}
	start := time.Now()
	for _, images := range imgs {
		if _, err := trn.Predict(images); err != nil {
			tb.Fatal(err)
		}
	}
	return float64(batches) / time.Since(start).Seconds()
}

// TestFusedOffloadSpeedup enforces the fused-offload win: with a synthetic
// 1ms per-dispatch device latency, fusing DeepMLP's 7 offloads into 3 gang
// flights must reach at least 2x the per-layer path's throughput on the
// same gang (theoretical flight ratio 7/3 ≈ 2.33x; the gate leaves margin
// for the TEE work both paths share). The bench-smoke CI matrix runs it at
// GOMAXPROCS 4 and 8; it skips below 4 cores per the gate's contract.
func TestFusedOffloadSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d, gate needs >= 4 (the bench-smoke matrix runs it at 4 and 8)", runtime.GOMAXPROCS(0))
	}
	const delay = time.Millisecond
	best := 0.0
	for i := 0; i < 3 && best < 2.0; i++ {
		perLayer := fusedForwardThroughput(t, false, 16, delay)
		fused := fusedForwardThroughput(t, true, 16, delay)
		if x := fused / perLayer; x > best {
			best = x
		}
	}
	if best < 2.0 {
		t.Fatalf("fused speedup %.2fx, want >= 2x over the per-layer path", best)
	}
	t.Logf("fused speedup %.2fx", best)
}

// fusedServeThroughput drives n closed-loop requests through a one-worker
// K=4 DeepMLP server whose devices all carry `delay` per-dispatch latency,
// with or without fused offload + continuous batching, and returns
// requests/second plus the final metrics snapshot.
func fusedServeThroughput(tb testing.TB, fuse bool, n, clients int, delay time.Duration) (float64, ServerMetrics) {
	tb.Helper()
	srv, err := NewServer(func() *Model { return DeepMLP(1, 8, 8, 4, 16, 1) }, ServerConfig{
		Config: Config{
			VirtualBatch: 4,
			Seed:         1,
			EnclaveBytes: -1,
			SlowDelay:    delay,
		},
		Workers:    1,
		MaxWait:    5 * time.Millisecond,
		SlowAll:    true,
		Fuse:       fuse,
		Continuous: fuse,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(n) / elapsed, srv.Metrics()
}

// BenchmarkFusedServing measures end-to-end serving of the fusion-friendly
// DeepMLP with fused offload + continuous batching against the per-layer
// PR6-shaped baseline, on identical gangs with a 1ms synthetic device
// latency. Reported extras: the flight amortization (layers per flight)
// and the continuous-batching rider count.
func BenchmarkFusedServing(b *testing.B) {
	const delay = time.Millisecond
	var base, fused float64
	var m ServerMetrics
	for i := 0; i < b.N; i++ {
		base, _ = fusedServeThroughput(b, false, 96, 16, delay)
		fused, m = fusedServeThroughput(b, true, 96, 16, delay)
	}
	b.ReportMetric(base, "per-layer-req/s")
	b.ReportMetric(fused, "fused-req/s")
	b.ReportMetric(fused/base, "fused-x")
	if m.Phases.Flights > 0 {
		b.ReportMetric(float64(m.Phases.Offloads)/float64(m.Phases.Flights), "layers/flight")
	}
	b.ReportMetric(float64(m.ContinuousAdmits), "continuous-admits")
}
