// Command darknightlint runs the repository's invariant analyzers.
//
// Standalone (the everyday form):
//
//	go run ./cmd/darknightlint ./...
//	go run ./cmd/darknightlint -checks lazyterms,leasepair ./internal/field
//
// It loads, typechecks and analyzes the named packages (default ./...),
// prints findings as file:line:col: analyzer: message, and exits 1 when
// any unsuppressed finding remains. The whole-tree metric coverage check
// (canonical families nobody registers) runs in this mode too.
//
// Vet tool (drop-in for CI pipelines that already run go vet):
//
//	go vet -vettool=$(go env GOPATH)/bin/darknightlint ./...
//
// When invoked by cmd/go the tool receives a single *.cfg argument and
// speaks the vet unit-checker protocol: it answers -V=full for the build
// cache, typechecks the unit from the config's file lists, writes the
// (empty — the suite is fact-free) .vetx output, reports findings to
// stderr and exits 2 when there are any.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"darknight/internal/analysis"
	"darknight/internal/analysis/load"
	"darknight/internal/analysis/metricname"
	"darknight/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("darknightlint", flag.ExitOnError)
	var (
		vFlag       = fs.String("V", "", "print version and exit (vet tool protocol)")
		checks      = fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
		list        = fs.Bool("list", false, "list analyzers and exit")
		showSup     = fs.Bool("show-suppressed", false, "also print suppressed findings with their reasons")
		jsonOut     = fs.Bool("json", false, "emit findings as JSON")
		flagsOnly   = fs.Bool("flags", false, "print registered flags (vet tool protocol) and exit")
		fixNothing  = fs.Bool("fix", false, "accepted for vet compatibility; the suite has no fixers")
		vetxOnlyCLI = fs.Bool("vetx-only", false, "accepted for vet compatibility")
	)
	_ = fixNothing
	_ = vetxOnlyCLI
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *vFlag != "" {
		// cmd/go hashes this line into its build cache key; it must be
		// "name version ..." and change when the tool changes.
		fmt.Printf("darknightlint version devel buildID=%s\n", selfID())
		return 0
	}
	if *flagsOnly {
		// vet asks which flags the tool supports (a JSON array of
		// {Name,Bool,Usage}); none beyond the protocol.
		fmt.Println("[]")
		return 0
	}
	analyzers := suite.All()
	if *checks != "" {
		analyzers = suite.ByName(strings.Split(*checks, ","))
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "darknightlint: unknown analyzer in -checks=%s\n", *checks)
			return 1
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0], analyzers)
	}
	return runStandalone(rest, analyzers, *showSup, *jsonOut)
}

// selfID fingerprints the executable so the go build cache invalidates
// vet results when the tool is rebuilt.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// --- standalone mode ---

func runStandalone(patterns []string, analyzers []*analysis.Analyzer, showSup, jsonOut bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	env, err := load.NewEnv(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	pkgs, err := env.Packages()
	if err != nil {
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	results, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	active := analysis.Active(results)
	// Coverage direction: canonical metric families no analyzed package
	// registers. Only meaningful on whole-tree runs.
	var missing []string
	if wholeTree(patterns) && hasAnalyzer(analyzers, metricname.Analyzer.Name) {
		missing = metricname.Unregistered(suite.MetricSets(results))
	}
	if jsonOut {
		out := struct {
			Findings            []analysis.Diagnostic `json:"findings"`
			UnregisteredMetrics []string              `json:"unregistered_metrics,omitempty"`
		}{active, missing}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	} else {
		for _, d := range active {
			fmt.Println(rel(cwd, d))
		}
		if showSup {
			for _, pr := range results {
				for _, d := range pr.Diagnostics {
					if d.Suppressed {
						fmt.Printf("%s [suppressed: %s]\n", rel(cwd, d), d.Reason)
					}
				}
			}
		}
		for _, name := range missing {
			fmt.Printf("metricname: canonical family %s is never registered by any package; remove it from canonical.go or restore the registration\n", name)
		}
	}
	if len(active) > 0 || len(missing) > 0 {
		return 1
	}
	return 0
}

func wholeTree(patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			return true
		}
	}
	return false
}

func hasAnalyzer(as []*analysis.Analyzer, name string) bool {
	for _, a := range as {
		if a.Name == name {
			return true
		}
	}
	return false
}

// rel prints a finding with the file path relativized to dir.
func rel(dir string, d analysis.Diagnostic) string {
	p := d.Pos
	if r, err := filepath.Rel(dir, p.Filename); err == nil && !strings.HasPrefix(r, "..") {
		p.Filename = r
	}
	d.Pos = p
	return d.String()
}

// --- vet unit-checker mode ---

// vetConfig mirrors the JSON cmd/go hands a -vettool (one compilation
// unit per invocation).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "darknightlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite exports no facts, but the protocol requires the output
	// file to exist before cmd/go will cache the action.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "darknightlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, gf := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "darknightlint:", err)
			return 1
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	pkg := &load.Package{
		ImportPath: cfg.ImportPath, Dir: cfg.Dir,
		Fset: fset, Files: files, Types: tpkg, Info: info,
	}
	diags, err := analysis.RunFiles(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "darknightlint:", err)
		return 1
	}
	exit := 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		fmt.Fprintln(os.Stderr, d.String())
		exit = 2
	}
	return exit
}
