// Command darknight is a CLI for the DarKnight reproduction. It trains and
// serves small models on synthetic data through the full masked pipeline:
//
//	darknight train   [-model tiny|vgg|resnet|mobilenet] [-epochs N] [-k K] [-batch N]
//	                  [-pipeline D] [-fleet] [-spares N] [-slack N] [-slowall] [-slowdelay D]
//	darknight infer   [-model ...] [-k K] [-integrity]
//	darknight verify  [-malicious GPUIDX]
//	darknight serve   [-model ...] [-k K] [-workers N] [-clients N] [-duration D]
//	                  [-tenants gold:3,bronze:1] [-malicious I] [-faultprob P] [-recover]
//	                  [-spares N] [-slack N] [-speculate D] [-slow I] [-slowdelay D]
//	                  [-metrics-addr :9090] [-trace-sample F] [-flight-recorder N]
//	                  [-obs-dump DIR]
//	darknight loadgen [-model ...] [-k K] [-workers N] [-maxclients N] [-duration D]
//	                  [-tenants ...] [-malicious I] [-faultprob P] [-slow I]
//	darknight snapshot [-addr HOST:PORT] [-o FILE]
//	darknight replay  -snapshot FILE [-model NAME] [-seed N] [-v]
//
// `train -pipeline D` overlaps D virtual batches across the TEE and the
// GPU gangs (forward and backward), bit-identical weights to serial;
// `-fleet` adds self-healing fleet management (per-batch gang grants,
// quarantine of attributed tamperers, straggler-tolerant quorum decode).
// `verify` demonstrates integrity detection: it runs a training step
// against a cluster containing a tampering GPU and reports the violation.
// `serve` stands up the concurrent inference service under closed-loop
// client load and reports throughput, latency quantiles, batch occupancy
// and the fleet health snapshot (quarantines, stragglers, tenant shares);
// `loadgen` sweeps the client count to chart how dynamic K-batching
// converts concurrency into throughput, optionally with fault injection
// and fair-share tenants.
//
// `serve -metrics-addr :9090` exports the run live (Prometheus text at
// /metrics, plus /metrics.json, /traces, /flightrecorder);
// `-trace-sample 1` traces every request and prints the last span tree
// with its critical-path breakdown; `-obs-dump DIR` writes the metrics,
// trace and flight-recorder artifacts after the run (the CI artifact set).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"darknight"
	"darknight/internal/masking"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "infer":
		cmdInfer(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "loadgen":
		cmdLoadgen(os.Args[2:])
	case "snapshot":
		cmdSnapshot(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: darknight <train|infer|verify|serve|loadgen|snapshot|replay> [flags]")
	os.Exit(2)
}

func buildModel(name string, seed int64) *darknight.Model {
	m, err := darknight.BuildModel(name, seed)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	epochs := fs.Int("epochs", 4, "training epochs")
	k := fs.Int("k", 2, "virtual batch size K")
	batchSize := fs.Int("batch", 8, "large-batch size (multiples of K avoid dropped tail examples)")
	integrity := fs.Bool("integrity", false, "enable integrity verification (one extra GPU)")
	pipeline := fs.Int("pipeline", 0, "train pipeline depth: >= 2 overlaps that many virtual batches (TEE/GPU pipelining), <= 1 serial")
	fleetFlag := fs.Bool("fleet", false, "route dispatch through the self-healing fleet manager (per-batch gang grants, quarantine); needs -pipeline >= 2")
	spares := fs.Int("spares", 0, "spare GPUs beyond the gang sizing (quarantine headroom)")
	slack := fs.Int("slack", 0, "straggler slack: decode after all but N coded responses (forward needs -integrity redundancy >= 2)")
	slowall := fs.Bool("slowall", false, "make every device slow by -slowdelay (shows what pipelining hides)")
	slowdelay := fs.Duration("slowdelay", 0, "per-dispatch latency of slow devices (default 5ms)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	model := buildModel(*modelName, *seed)
	if *batchSize < *k {
		log.Fatalf("-batch %d is smaller than the virtual batch K=%d", *batchSize, *k)
	}
	if *slack > 0 && !*fleetFlag {
		log.Fatal("-slack needs -fleet: straggler quorum dispatch is a fleet-grant capability (a raw cluster always waits for every device)")
	}
	redundancy := 0
	if *integrity {
		redundancy = 1
	}
	if *slack > 0 && redundancy < 2 {
		redundancy = 2 // forward quorum retains one check; backward dual-window needs the secondary decoding
	}
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch:       *k,
		Redundancy:         redundancy,
		Seed:               *seed,
		TrainPipelineDepth: *pipeline,
		ManagedFleet:       *fleetFlag,
		SpareGPUs:          *spares,
		StragglerSlack:     *slack,
		SlowAll:            *slowall,
		SlowDelay:          *slowdelay,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	data := darknight.SyntheticDataset(240, 4, 1, 8, 8, *seed+1)
	train, test := data[:192], data[192:]
	if *batchSize > len(train) {
		log.Fatalf("-batch %d exceeds the %d-example training set", *batchSize, len(train))
	}
	mode := "serial"
	if *pipeline >= 2 {
		mode = fmt.Sprintf("pipelined depth %d", *pipeline)
		if *fleetFlag {
			mode += ", fleet-managed gangs"
		}
	}
	fmt.Printf("training %s privately: K=%d, integrity=%v, %d examples, %s\n",
		model.Name(), *k, *integrity, len(train), mode)
	warnedDrop := false
	start := time.Now()
	for epoch := 1; epoch <= *epochs; epoch++ {
		var loss float64
		batches := 0
		for i := 0; i+*batchSize <= len(train); i += *batchSize {
			l, stats, err := sys.TrainBatchStats(train[i : i+*batchSize])
			if err != nil {
				log.Fatalf("epoch %d: %v", epoch, err)
			}
			if stats.DroppedExamples > 0 && !warnedDrop {
				log.Printf("warning: %d tail example(s) per batch dropped — DarKnight codes exactly K=%d inputs per "+
					"dispatch (the paper's K-granularity constraint); use -batch sizes that are multiples of K",
					stats.DroppedExamples, *k)
				warnedDrop = true
			}
			loss += l
			batches++
		}
		fmt.Printf("epoch %d: loss %.4f, test accuracy %.3f\n",
			epoch, loss/float64(batches), sys.Evaluate(test))
	}
	elapsed := time.Since(start)
	ph := sys.TrainPhases()
	fmt.Printf("trained in %v; offloads %d, overlap ratio %.2f\n", elapsed.Round(time.Millisecond), ph.Offloads, ph.Overlap())
	if refills := sys.CacheRefills(); refills > 0 {
		fmt.Printf("backward cache refills: %d (devices replaced between forward and backward)\n", refills)
	}
	if *fleetFlag {
		fst := sys.FleetStats()
		fmt.Printf("fleet: %d quarantine events, %d straggler events, %d devices\n",
			fst.QuarantineEvents, fst.StragglerEvents, len(fst.Devices))
	}
	st := sys.EnclaveStats()
	tr := sys.GPUTraffic()
	fmt.Printf("enclave: %d seals (%d bytes); GPUs: %d jobs, %d bytes in, %d bytes out\n",
		st.SealOps, st.SealedBytes, tr.Jobs, tr.BytesIn, tr.BytesOut)
}

func cmdInfer(args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	k := fs.Int("k", 2, "virtual batch size K")
	integrity := fs.Bool("integrity", false, "enable integrity verification")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	model := buildModel(*modelName, *seed)
	redundancy := 0
	if *integrity {
		redundancy = 1
	}
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch: *k, Redundancy: redundancy, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := darknight.SyntheticDataset(*k, 4, 1, 8, 8, *seed+1)
	images := make([][]float64, *k)
	for i := range images {
		images[i] = data[i].Image
	}
	preds, err := sys.Predict(images)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range preds {
		fmt.Printf("image %d: predicted class %d (true %d)\n", i, p, data[i].Label)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	malicious := fs.Int("malicious", 1, "index of the tampering GPU")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	model := darknight.TinyCNN(1, 8, 8, 4, *seed)
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch:  2,
		Redundancy:    1,
		MaliciousGPUs: []int{*malicious},
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := darknight.SyntheticDataset(8, 4, 1, 8, 8, *seed+1)
	_, err = sys.TrainBatch(data)
	switch {
	case errors.Is(err, masking.ErrIntegrity):
		fmt.Printf("integrity violation DETECTED: GPU %d returned tampered results\n", *malicious)
	case err != nil:
		log.Fatalf("unexpected error: %v", err)
	default:
		log.Fatal("tampering went UNDETECTED — this is a bug")
	}
}
