// Command darknight is a CLI for the DarKnight reproduction. It trains and
// serves small models on synthetic data through the full masked pipeline:
//
//	darknight train   [-model tiny|vgg|resnet|mobilenet] [-epochs N] [-k K]
//	darknight infer   [-model ...] [-k K] [-integrity]
//	darknight verify  [-malicious GPUIDX]
//	darknight serve   [-model ...] [-k K] [-workers N] [-clients N] [-duration D]
//	                  [-tenants gold:3,bronze:1] [-malicious I] [-faultprob P] [-recover]
//	                  [-spares N] [-slack N] [-speculate D] [-slow I] [-slowdelay D]
//	darknight loadgen [-model ...] [-k K] [-workers N] [-maxclients N] [-duration D]
//	                  [-tenants ...] [-malicious I] [-faultprob P] [-slow I]
//
// `verify` demonstrates integrity detection: it runs a training step
// against a cluster containing a tampering GPU and reports the violation.
// `serve` stands up the concurrent inference service under closed-loop
// client load and reports throughput, latency quantiles, batch occupancy
// and the fleet health snapshot (quarantines, stragglers, tenant shares);
// `loadgen` sweeps the client count to chart how dynamic K-batching
// converts concurrency into throughput, optionally with fault injection
// and fair-share tenants.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"darknight"
	"darknight/internal/masking"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "train":
		cmdTrain(os.Args[2:])
	case "infer":
		cmdInfer(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "serve":
		cmdServe(os.Args[2:])
	case "loadgen":
		cmdLoadgen(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: darknight <train|infer|verify|serve|loadgen> [flags]")
	os.Exit(2)
}

func buildModel(name string, seed int64) *darknight.Model {
	switch name {
	case "tiny":
		return darknight.TinyCNN(1, 8, 8, 4, seed)
	case "vgg":
		return darknight.VGG16(1, 8, 8, 4, 1, seed)
	case "resnet":
		return darknight.ResNet50(1, 8, 8, 4, 1, seed)
	case "mobilenet":
		return darknight.MobileNetV2(1, 8, 8, 4, 1, seed)
	}
	log.Fatalf("unknown model %q (want tiny|vgg|resnet|mobilenet)", name)
	return nil
}

func cmdTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	epochs := fs.Int("epochs", 4, "training epochs")
	k := fs.Int("k", 2, "virtual batch size K")
	integrity := fs.Bool("integrity", false, "enable integrity verification (one extra GPU)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	model := buildModel(*modelName, *seed)
	redundancy := 0
	if *integrity {
		redundancy = 1
	}
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch: *k, Redundancy: redundancy, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := darknight.SyntheticDataset(240, 4, 1, 8, 8, *seed+1)
	train, test := data[:192], data[192:]
	fmt.Printf("training %s privately: K=%d, integrity=%v, %d examples\n",
		model.Name(), *k, *integrity, len(train))
	for epoch := 1; epoch <= *epochs; epoch++ {
		var loss float64
		batches := 0
		for i := 0; i+8 <= len(train); i += 8 {
			l, err := sys.TrainBatch(train[i : i+8])
			if err != nil {
				log.Fatalf("epoch %d: %v", epoch, err)
			}
			loss += l
			batches++
		}
		fmt.Printf("epoch %d: loss %.4f, test accuracy %.3f\n",
			epoch, loss/float64(batches), sys.Evaluate(test))
	}
	st := sys.EnclaveStats()
	tr := sys.GPUTraffic()
	fmt.Printf("enclave: %d seals (%d bytes); GPUs: %d jobs, %d bytes in, %d bytes out\n",
		st.SealOps, st.SealedBytes, tr.Jobs, tr.BytesIn, tr.BytesOut)
}

func cmdInfer(args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	k := fs.Int("k", 2, "virtual batch size K")
	integrity := fs.Bool("integrity", false, "enable integrity verification")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	model := buildModel(*modelName, *seed)
	redundancy := 0
	if *integrity {
		redundancy = 1
	}
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch: *k, Redundancy: redundancy, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := darknight.SyntheticDataset(*k, 4, 1, 8, 8, *seed+1)
	images := make([][]float64, *k)
	for i := range images {
		images[i] = data[i].Image
	}
	preds, err := sys.Predict(images)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range preds {
		fmt.Printf("image %d: predicted class %d (true %d)\n", i, p, data[i].Label)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	malicious := fs.Int("malicious", 1, "index of the tampering GPU")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	model := darknight.TinyCNN(1, 8, 8, 4, *seed)
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch:  2,
		Redundancy:    1,
		MaliciousGPUs: []int{*malicious},
		Seed:          *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := darknight.SyntheticDataset(8, 4, 1, 8, 8, *seed+1)
	_, err = sys.TrainBatch(data)
	switch {
	case errors.Is(err, masking.ErrIntegrity):
		fmt.Printf("integrity violation DETECTED: GPU %d returned tampered results\n", *malicious)
	case err != nil:
		log.Fatalf("unexpected error: %v", err)
	default:
		log.Fatal("tampering went UNDETECTED — this is a bug")
	}
}
