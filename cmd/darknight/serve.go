package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"darknight"
)

// parseTenants parses "gold:3,bronze:1" into tenant configs.
func parseTenants(s string) []darknight.Tenant {
	if s == "" {
		return nil
	}
	var out []darknight.Tenant
	for _, part := range strings.Split(s, ",") {
		name, weightStr, found := strings.Cut(strings.TrimSpace(part), ":")
		w := 1.0
		if found {
			v, err := strconv.ParseFloat(weightStr, 64)
			if err != nil || v <= 0 {
				log.Fatalf("bad tenant spec %q (want name:weight)", part)
			}
			w = v
		}
		out = append(out, darknight.Tenant{Name: name, Weight: w})
	}
	return out
}

// loadResult is one load run's per-error-class outcome breakdown: every
// client-visible error is classified, so an unexplained failure is exactly
// Failed.
type loadResult struct {
	OK        int64 // answered successfully
	Integrity int64 // rejected: tampered GPU results detected
	Deadline  int64 // typed deadline-budget expiries (resil)
	Shed      int64 // typed admission-control sheds (resil)
	Failed    int64 // anything else — unexplained
}

// errors returns the total error count.
func (r loadResult) errors() int64 { return r.Integrity + r.Deadline + r.Shed + r.Failed }

// runLoad drives closed-loop client goroutines against a server for the
// given duration (or until ctx is done — the graceful-shutdown path),
// spreading clients round-robin over the tenants (empty = default tenant).
func runLoad(ctx context.Context, srv *darknight.Server, images [][]float64, clients int, d time.Duration, tenants []darknight.Tenant) loadResult {
	var r loadResult
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := ""
			if len(tenants) > 0 {
				tenant = tenants[c%len(tenants)].Name
			}
			for i := c; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
				var err error
				if tenant == "" {
					_, err = srv.Infer(ctx, images[i%len(images)])
				} else {
					_, err = srv.InferAs(ctx, tenant, images[i%len(images)])
				}
				switch {
				case err == nil:
					atomic.AddInt64(&r.OK, 1)
				case ctx.Err() != nil:
					// Shutdown raced the request; not a service error.
				case darknight.IsIntegrityError(err):
					atomic.AddInt64(&r.Integrity, 1)
				case darknight.IsShed(err):
					atomic.AddInt64(&r.Shed, 1)
					// A shed is an explicit back-off signal.
					time.Sleep(500 * time.Microsecond)
				case darknight.IsDeadline(err):
					atomic.AddInt64(&r.Deadline, 1)
				default:
					atomic.AddInt64(&r.Failed, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	return r
}

// printResil reports the run's resilience accounting when any of it moved.
func printResil(r loadResult, rs darknight.ResilSnapshot) {
	if r.errors() > 0 || rs.Retries > 0 || rs.Hedges > 0 || rs.BrownoutShifts > 0 {
		fmt.Printf("errors: %d integrity, %d deadline, %d shed, %d other\n",
			r.Integrity, r.Deadline, r.Shed, r.Failed)
	}
	if rs.Retries > 0 || rs.RetriesExhausted > 0 {
		fmt.Printf("retries: %d re-dispatches, %d batches recovered, %d exhausted\n",
			rs.Retries, rs.RetrySuccess, rs.RetriesExhausted)
	}
	if rs.Hedges > 0 {
		fmt.Printf("hedging: %d duplicate flights, %d won, %d lost, %d cross-verify mismatches\n",
			rs.Hedges, rs.HedgeWins, rs.HedgeLosses, rs.HedgeMismatch)
	}
	if rs.BrownoutShifts > 0 || rs.BrownoutLevel > 0 {
		fmt.Printf("brownout: level %d now, %d transitions during the run\n",
			rs.BrownoutLevel, rs.BrownoutShifts)
	}
	if rs.ChaosActions > 0 {
		fmt.Printf("chaos: %d scripted fault actions applied\n", rs.ChaosActions)
	}
}

// printFleet reports the fleet manager's health and fairness state.
func printFleet(st darknight.FleetStats) {
	fmt.Printf("fleet: %d healthy, %d probation, %d quarantined; %d quarantine events, %d re-admissions, %d stragglers, %d speculative re-dispatches\n",
		st.Healthy, st.OnProbation, st.Quarantined,
		st.QuarantineEvents, st.Readmissions, st.StragglerEvents, st.Speculations)
	for _, d := range st.Devices {
		if d.State.String() == "healthy" && d.Faults == 0 && d.Stragglers == 0 {
			continue
		}
		fmt.Printf("  gpu %2d [%016x gen%d]: %-11s score %.2f, %d dispatches, %d faults, %d straggles, ewma %v\n",
			d.ID, d.Fingerprint, d.Generation, d.State, d.FaultScore, d.Dispatches, d.Faults, d.Stragglers, d.EWMALatency)
	}
	events := st.Events
	if len(events) > 10 {
		fmt.Printf("  ... %d earlier events elided\n", len(events)-10)
		events = events[len(events)-10:]
	}
	for _, ev := range events {
		fmt.Printf("  event %d: gpu %d %s -> %s (%s)\n", ev.Seq, ev.Device, ev.From, ev.To, ev.Reason)
	}
	if len(st.Tenants) > 1 {
		fmt.Println("  tenant shares:")
		for _, tu := range st.Tenants {
			fmt.Printf("    %-10s weight %.1f: %d gangs, %.3f device-s, normalized share %.3f\n",
				tu.Name, tu.Weight, tu.Grants, tu.DeviceSeconds, tu.Share)
		}
	}
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	k := fs.Int("k", 4, "virtual batch size K")
	workers := fs.Int("workers", 2, "inference pipelines (model replicas)")
	pipeline := fs.Int("pipeline", 0, "pipeline depth per worker: >= 2 overlaps encode/dispatch/decode across that many batches (0 = serial)")
	clients := fs.Int("clients", 8, "closed-loop client goroutines")
	duration := fs.Duration("duration", 2*time.Second, "load duration")
	maxWait := fs.Duration("maxwait", 2*time.Millisecond, "batching deadline before dummy-row padding")
	integrity := fs.Bool("integrity", false, "enable integrity verification (one extra GPU per gang)")
	malicious := fs.Int("malicious", -1, "index of a tampering GPU (-1 = none; implies -integrity)")
	faultProb := fs.Float64("faultprob", 0, "probabilistic fault injection on the malicious GPU (0 = corrupt every job)")
	faultSeed := fs.Int64("faultseed", 1, "seed of the probabilistic fault injector")
	recover := fs.Bool("recover", false, "audit-and-recover tampered batches (forces E=2 and quarantine attribution)")
	tenantsFlag := fs.String("tenants", "", "fair-share tenants, e.g. gold:3,bronze:1 (clients round-robin over them)")
	spares := fs.Int("spares", 0, "spare GPUs beyond the worker gangs (quarantine/speculation headroom)")
	slack := fs.Int("slack", 0, "straggler slack: decode after all but N coded responses (needs E >= 2)")
	fuse := fs.Bool("fuse", false, "fuse consecutive bilinear layers into one gang flight per block (bit-identical outputs)")
	continuous := fs.Bool("continuous", false, "continuous batching: flushed padded batches keep admitting riders until a worker picks them up")
	speculate := fs.Duration("speculate", 0, "speculative re-dispatch window for lagging shares (0 = off)")
	slow := fs.Int("slow", -1, "index of a deterministically slow GPU (-1 = none)")
	slowAll := fs.Bool("slowall", false, "add -slowdelay latency to every GPU (the device-latency regime -pipeline hides)")
	slowDelay := fs.Duration("slowdelay", 5*time.Millisecond, "added latency of the slow GPU(s)")
	metricsAddr := fs.String("metrics-addr", "", "HTTP listener exporting /metrics, /metrics.json, /traces, /flightrecorder (e.g. :9090; empty = off)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of requests traced (0 = off, 1 = all); the last trace is printed after the run")
	flightRec := fs.Int("flight-recorder", 0, "flight-recorder event-ring capacity (0 = default 1024 when other obs flags are set)")
	obsDump := fs.String("obs-dump", "", "directory for observability artifacts after the run (metrics.prom, metrics.json, trace.txt, flightrecorder.json)")
	snapshot := fs.String("snapshot", "", "write a replayable state snapshot to this file after the run (also served live at /snapshot)")
	snapWeights := fs.Bool("snapshot-weights", false, "embed the full model weights in snapshots (self-contained, but large)")
	sloP99 := fs.Duration("slo-p99", 0, "per-tenant P99 latency objective (0 = SLO tracking off)")
	sloGoal := fs.Float64("slo-goal", 0.99, "fraction of requests that must meet -slo-p99")
	sloErrors := fs.Float64("slo-errors", 0.001, "error-budget fraction of the SLO")
	budget := fs.Duration("budget", 0, "default end-to-end deadline budget per request (0 = unbounded)")
	retry := fs.Int("retry", 0, "re-dispatch a failed batch onto a fresh gang up to N times")
	hedgePct := fs.Float64("hedge-pct", 0, "hedge a batch slower than this latency percentile, e.g. 0.95 (0 = off; serial workers only)")
	shed := fs.Int("shed", 0, "shed requests with a typed error when the queue holds >= N (0 = off)")
	brownout := fs.Bool("brownout", false, "SLO-driven brownout degradation (uses -slo-p99, or a default objective)")
	chaosPath := fs.String("chaos", "", "play this chaos schedule (JSON) against the fleet during the load")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	if *k < 1 {
		log.Fatalf("serve: -k %d invalid, need K >= 1", *k)
	}
	redundancy := 0
	if *integrity || *malicious >= 0 {
		redundancy = 1
	}
	if *recover || *slack > 0 {
		redundancy = 2
	}
	if *recover && *slack > 0 {
		// Straggler slack spends redundant equations; recovery still needs
		// two live checks in every quorum to attribute a culprit.
		redundancy = 2 + *slack
	}
	tenants := parseTenants(*tenantsFlag)
	cfg := darknight.ServerConfig{
		Config: darknight.Config{
			VirtualBatch: *k,
			Redundancy:   redundancy,
			Seed:         *seed,
		},
		Workers:        *workers,
		PipelineDepth:  *pipeline,
		MaxWait:        *maxWait,
		Tenants:        tenants,
		SpareGPUs:      *spares,
		Recover:        *recover,
		StragglerSlack: *slack,
		Fuse:           *fuse,
		Continuous:     *continuous,
		SpeculateAfter: *speculate,
		Observability: darknight.ObservabilityConfig{
			Enabled:            *obsDump != "" || *snapshot != "",
			MetricsAddr:        *metricsAddr,
			TraceSample:        *traceSample,
			FlightRecorderSize: *flightRec,
			SnapshotWeights:    *snapWeights,
		},
		Resilience: darknight.ResilienceConfig{
			Budget:        *budget,
			RetryMax:      *retry,
			HedgeQuantile: *hedgePct,
			ShedQueue:     *shed,
			Brownout:      *brownout,
		},
		Arch: *modelName,
	}
	cfg.Chaos = *chaosPath != ""
	if *sloP99 > 0 {
		cfg.Observability.SLO = darknight.SLOConfig{
			Objectives: []darknight.SLOObjective{{
				Tenant:        "*",
				LatencyTarget: *sloP99,
				LatencyGoal:   *sloGoal,
				ErrorBudget:   *sloErrors,
			}},
		}
	}
	if *brownout && *sloP99 <= 0 {
		// Brownout consumes SLO breach events; give it a responsive default
		// objective (and short windows) when the user set none.
		log.Println("note: -brownout without -slo-p99; defaulting to a 20ms/0.95 objective over 2s/10s windows")
		cfg.Observability.SLO = darknight.SLOConfig{
			Objectives: []darknight.SLOObjective{{
				Tenant:        "*",
				LatencyTarget: 20 * time.Millisecond,
				LatencyGoal:   0.95,
				ErrorBudget:   0.05,
			}},
			Windows: []time.Duration{2 * time.Second, 10 * time.Second},
		}
	}
	if *malicious >= 0 {
		cfg.MaliciousGPUs = []int{*malicious}
		if *faultProb > 0 {
			cfg.FaultPolicy.Probability = *faultProb
			cfg.FaultPolicy.Seed = *faultSeed
		}
	}
	if *slow >= 0 {
		cfg.SlowGPUs = []int{*slow}
		cfg.SlowDelay = *slowDelay
	}
	if *slowAll {
		cfg.SlowAll = true
		cfg.SlowDelay = *slowDelay
	}
	if *speculate > 0 && *slack < 1 {
		log.Println("note: -speculate rides the straggler quorum path; pass -slack >= 1 for it to engage")
	}
	var chaosSched *darknight.ChaosSchedule
	if *chaosPath != "" {
		var err error
		chaosSched, err = darknight.LoadChaosSchedule(*chaosPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	srv, err := darknight.NewServer(func() *darknight.Model { return buildModel(*modelName, *seed) }, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Graceful shutdown: SIGINT/SIGTERM stops admitting new load; in-flight
	// requests drain through Close, and the final snapshot still writes.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	data := darknight.SyntheticDataset(256, 4, 1, 8, 8, *seed+1)
	images := make([][]float64, len(data))
	for i := range images {
		images[i] = data[i].Image
	}

	gang := *k + 1 + redundancy
	mode := "serial"
	if *pipeline >= 2 {
		mode = fmt.Sprintf("pipelined x%d", *pipeline)
	}
	fmt.Printf("serving %s privately: K=%d, gang=%d GPUs (+%d spares), %d workers (%s), %d clients, maxwait=%v\n",
		*modelName, *k, gang, *spares, *workers, mode, *clients, *maxWait)
	if a := srv.MetricsAddr(); a != "" {
		fmt.Printf("metrics: http://%s/metrics (also /metrics.json, /traces, /flightrecorder)\n", a)
	}
	if chaosSched != nil {
		stopChaos, err := srv.StartChaos(chaosSched)
		if err != nil {
			log.Fatal(err)
		}
		defer stopChaos()
		fmt.Printf("chaos: playing schedule %q (%d events over %v)\n",
			chaosSched.Name, len(chaosSched.Events), chaosSched.Duration())
	}
	r := runLoad(ctx, srv, images, *clients, *duration, tenants)
	if ctx.Err() != nil {
		fmt.Println("\ninterrupted: draining in-flight requests and finishing the report")
	}
	ok, integ := r.OK, r.Integrity

	m := srv.Metrics()
	fmt.Printf("completed %d requests in %v (%.0f req/s)\n", ok, *duration, m.Throughput)
	fmt.Printf("latency: p50 %v, p99 %v\n", m.P50, m.P99)
	fmt.Printf("batches: %d dispatched, occupancy %.2f (%d real rows, %d dummy rows)\n",
		m.Batches, m.Occupancy, m.RealRows, m.PaddedRows)
	if tot := m.Phases.Encode + m.Phases.Dispatch + m.Phases.Decode; tot > 0 {
		pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(tot) }
		fmt.Printf("TEE phase breakdown over %d offloads: encode %v (%.0f%%), dispatch %v (%.0f%%), decode %v (%.0f%%)\n",
			m.Phases.Offloads,
			m.Phases.Encode, pct(m.Phases.Encode),
			m.Phases.Dispatch, pct(m.Phases.Dispatch),
			m.Phases.Decode, pct(m.Phases.Decode))
	}
	if m.Phases.Wall > 0 {
		fmt.Printf("pipeline: wall %v, overlap ratio %.2f (phase-sum / wall)\n", m.Phases.Wall, m.Overlap)
	}
	if m.Phases.Flights > 0 {
		fmt.Printf("flights: %d gang flights for %d offloads (%.2f layers/flight)",
			m.Phases.Flights, m.Phases.Offloads, float64(m.Phases.Offloads)/float64(m.Phases.Flights))
		if m.Phases.FusedBlocks > 0 {
			fmt.Printf("; %d fused blocks carried %d layers", m.Phases.FusedBlocks, m.Phases.FusedLayers)
		}
		fmt.Println()
	}
	if m.ContinuousAdmits > 0 {
		fmt.Printf("continuous batching: %d riders admitted into flushed batches\n", m.ContinuousAdmits)
	}
	if np := m.NoisePool; np.Hits+np.Misses > 0 {
		fmt.Printf("noise pool: %.0f%% hit rate (%d precomputed, %d inline fallbacks)\n",
			100*np.HitRate(), np.Hits, np.Misses)
	}
	if *malicious >= 0 {
		if *recover {
			fmt.Printf("integrity: %d requests rejected, %d served through recovery despite tampering\n", integ, ok)
		} else {
			fmt.Printf("integrity: %d requests rejected with tampered-GPU detection\n", integ)
		}
	}
	printResil(r, m.Resil)
	printFleet(srv.FleetStats())
	tr := srv.GPUTraffic()
	fmt.Printf("GPUs: %d jobs, %d bytes in, %d bytes out\n", tr.Jobs, tr.BytesIn, tr.BytesOut)
	if traces := srv.RecentTraces(); len(traces) > 0 {
		fmt.Println("\nsample trace (most recent completed request):")
		last := traces[len(traces)-1]
		last.Render(os.Stdout)
		last.RenderBreakdown(os.Stdout)
	}
	if *obsDump != "" {
		if err := dumpObsArtifacts(*obsDump, srv); err != nil {
			log.Fatalf("obs-dump: %v", err)
		}
		fmt.Printf("observability artifacts written to %s\n", *obsDump)
	}
	if t := srv.SLO(); t != nil {
		for _, br := range t.BurnRates() {
			fmt.Printf("slo: tenant %s %s over %v: burn %.2f\n", br.Tenant, br.SLO, br.Window, br.Burn)
		}
		if n := t.Breaches(); n > 0 {
			fmt.Printf("slo: %d burn-rate threshold crossings during the run\n", n)
		}
	}
	if *snapshot != "" {
		if err := srv.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		fmt.Printf("state snapshot written to %s (replay with: darknight replay -snapshot %s)\n", *snapshot, *snapshot)
	}
}

// dumpObsArtifacts writes the run's observability surfaces to dir:
// metrics.prom (Prometheus text), metrics.json (registry dump), trace.txt
// (every retained span tree + breakdown) and flightrecorder.json (the
// event ring) — the CI artifact set.
func dumpObsArtifacts(dir string, srv *darknight.Server) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var prom bytes.Buffer
	if err := srv.WriteMetrics(&prom); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "metrics.prom"), prom.Bytes(), 0o644); err != nil {
		return err
	}
	reg, err := srv.Observability().Registry.DumpJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "metrics.json"), reg, 0o644); err != nil {
		return err
	}
	var traces bytes.Buffer
	for _, sp := range srv.RecentTraces() {
		sp.Render(&traces)
		sp.RenderBreakdown(&traces)
		fmt.Fprintln(&traces)
	}
	if err := os.WriteFile(filepath.Join(dir, "trace.txt"), traces.Bytes(), 0o644); err != nil {
		return err
	}
	events, err := json.MarshalIndent(srv.FlightRecorderDump(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "flightrecorder.json"), events, 0o644)
}

func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	k := fs.Int("k", 4, "virtual batch size K")
	workers := fs.Int("workers", 2, "inference pipelines")
	pipeline := fs.Int("pipeline", 0, "pipeline depth per worker (0 = serial)")
	maxClients := fs.Int("maxclients", 16, "largest client count in the sweep")
	duration := fs.Duration("duration", time.Second, "load duration per step")
	maxWait := fs.Duration("maxwait", 2*time.Millisecond, "batching deadline")
	tenantsFlag := fs.String("tenants", "", "fair-share tenants, e.g. gold:3,bronze:1 (clients round-robin over them)")
	malicious := fs.Int("malicious", -1, "index of a tampering GPU (-1 = none; forces E=2 + recovery)")
	faultProb := fs.Float64("faultprob", 0, "probabilistic fault injection on the malicious GPU (0 = corrupt every job)")
	faultSeed := fs.Int64("faultseed", 1, "seed of the probabilistic fault injector")
	slow := fs.Int("slow", -1, "index of a deterministically slow GPU (-1 = none)")
	slowDelay := fs.Duration("slowdelay", 5*time.Millisecond, "added latency of the slow GPU")
	chaosPath := fs.String("chaos", "", "play this chaos schedule (JSON) during every step; implies recovery + retry headroom")
	budget := fs.Duration("budget", 0, "default end-to-end deadline budget per request (0 = unbounded)")
	retry := fs.Int("retry", 0, "re-dispatch a failed batch onto a fresh gang up to N times")
	hedgePct := fs.Float64("hedge-pct", 0, "hedge a batch slower than this latency percentile (0 = off; serial workers only)")
	shed := fs.Int("shed", 0, "shed requests with a typed error when the queue holds >= N (0 = off)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	if *k < 1 {
		log.Fatalf("loadgen: -k %d invalid, need K >= 1", *k)
	}
	var chaosSched *darknight.ChaosSchedule
	if *chaosPath != "" {
		var err error
		chaosSched, err = darknight.LoadChaosSchedule(*chaosPath)
		if err != nil {
			log.Fatal(err)
		}
		if *retry == 0 {
			*retry = 2 // a crashed gang's batch deserves a fresh one
		}
	}
	tenants := parseTenants(*tenantsFlag)
	data := darknight.SyntheticDataset(256, 4, 1, 8, 8, *seed+1)
	images := make([][]float64, len(data))
	for i := range images {
		images[i] = data[i].Image
	}

	fmt.Printf("load sweep: %s, K=%d, %d workers, %v per step\n", *modelName, *k, *workers, *duration)
	fmt.Printf("%8s %12s %12s %12s %10s %12s\n", "clients", "req/s", "p50", "p99", "occupancy", "quarantined")
	for clients := 1; clients <= *maxClients; clients *= 2 {
		cfg := darknight.ServerConfig{
			Config:        darknight.Config{VirtualBatch: *k, Seed: *seed},
			Workers:       *workers,
			PipelineDepth: *pipeline,
			MaxWait:       *maxWait,
			Tenants:       tenants,
			Resilience: darknight.ResilienceConfig{
				Budget:        *budget,
				RetryMax:      *retry,
				HedgeQuantile: *hedgePct,
				ShedQueue:     *shed,
			},
		}
		if *malicious >= 0 {
			// Fault injection in a sweep wants the service to survive:
			// attribute + recover + quarantine rather than fail requests.
			cfg.Redundancy = 2
			cfg.Recover = true
			cfg.SpareGPUs = 2
			cfg.MaliciousGPUs = []int{*malicious}
			if *faultProb > 0 {
				cfg.FaultPolicy.Probability = *faultProb
				cfg.FaultPolicy.Seed = *faultSeed
			}
		}
		if *slow >= 0 {
			cfg.SlowGPUs = []int{*slow}
			cfg.SlowDelay = *slowDelay
		}
		if chaosSched != nil {
			// Chaos survival needs the same headroom: attribution + recovery
			// so crashed/tampering devices quarantine instead of failing
			// clients, and spares to refill their gangs.
			cfg.Chaos = true
			if cfg.Redundancy < 2 {
				cfg.Redundancy = 2
			}
			cfg.Recover = true
			if cfg.SpareGPUs < 2 {
				cfg.SpareGPUs = 2
			}
		}
		srv, err := darknight.NewServer(func() *darknight.Model { return buildModel(*modelName, *seed) }, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var stopChaos func()
		if chaosSched != nil {
			if stopChaos, err = srv.StartChaos(chaosSched); err != nil {
				log.Fatal(err)
			}
		}
		r := runLoad(context.Background(), srv, images, clients, *duration, tenants)
		if stopChaos != nil {
			stopChaos()
		}
		m := srv.Metrics()
		fst := srv.FleetStats()
		srv.Close()
		fmt.Printf("%8d %12.0f %12v %12v %10.2f %12d\n", clients, m.Throughput, m.P50, m.P99, m.Occupancy, fst.Quarantined)
		printResil(r, m.Resil)
		if len(tenants) > 0 {
			for _, ts := range m.Tenants {
				var share float64
				for _, tu := range fst.Tenants {
					if tu.Name == ts.Name {
						share = tu.DeviceSeconds
					}
				}
				fmt.Printf("%8s   %-10s completed %6d, occupancy %.2f, %.3f device-s\n",
					"", ts.Name, ts.Completed, ts.Occupancy, share)
			}
		}
	}
}
