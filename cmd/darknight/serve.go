package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"darknight"
)

// runLoad drives closed-loop client goroutines against a server for the
// given duration and returns (completed, integrityErrors, otherErrors).
func runLoad(srv *darknight.Server, images [][]float64, clients int, d time.Duration) (int64, int64, int64) {
	var ok, integrity, failed int64
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; time.Now().Before(deadline); i++ {
				_, err := srv.Infer(context.Background(), images[i%len(images)])
				switch {
				case err == nil:
					atomic.AddInt64(&ok, 1)
				case darknight.IsIntegrityError(err):
					atomic.AddInt64(&integrity, 1)
				default:
					atomic.AddInt64(&failed, 1)
				}
			}
		}(c)
	}
	wg.Wait()
	return ok, integrity, failed
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	k := fs.Int("k", 4, "virtual batch size K")
	workers := fs.Int("workers", 2, "inference pipelines (model replicas)")
	clients := fs.Int("clients", 8, "closed-loop client goroutines")
	duration := fs.Duration("duration", 2*time.Second, "load duration")
	maxWait := fs.Duration("maxwait", 2*time.Millisecond, "batching deadline before dummy-row padding")
	integrity := fs.Bool("integrity", false, "enable integrity verification (one extra GPU per gang)")
	malicious := fs.Int("malicious", -1, "index of a tampering GPU (-1 = none; implies -integrity)")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	if *k < 1 {
		log.Fatalf("serve: -k %d invalid, need K >= 1", *k)
	}
	redundancy := 0
	if *integrity || *malicious >= 0 {
		redundancy = 1
	}
	cfg := darknight.ServerConfig{
		Config: darknight.Config{
			VirtualBatch: *k,
			Redundancy:   redundancy,
			Seed:         *seed,
		},
		Workers: *workers,
		MaxWait: *maxWait,
	}
	if *malicious >= 0 {
		cfg.MaliciousGPUs = []int{*malicious}
	}
	srv, err := darknight.NewServer(func() *darknight.Model { return buildModel(*modelName, *seed) }, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	data := darknight.SyntheticDataset(256, 4, 1, 8, 8, *seed+1)
	images := make([][]float64, len(data))
	for i := range images {
		images[i] = data[i].Image
	}

	gang := *k + 1 + redundancy
	fmt.Printf("serving %s privately: K=%d, gang=%d GPUs, %d workers, %d clients, maxwait=%v\n",
		*modelName, *k, gang, *workers, *clients, *maxWait)
	ok, integ, failed := runLoad(srv, images, *clients, *duration)

	m := srv.Metrics()
	fmt.Printf("completed %d requests in %v (%.0f req/s)\n", ok, *duration, m.Throughput)
	fmt.Printf("latency: p50 %v, p99 %v\n", m.P50, m.P99)
	fmt.Printf("batches: %d dispatched, occupancy %.2f (%d real rows, %d dummy rows)\n",
		m.Batches, m.Occupancy, m.RealRows, m.PaddedRows)
	if tot := m.Phases.Encode + m.Phases.Dispatch + m.Phases.Decode; tot > 0 {
		pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(tot) }
		fmt.Printf("TEE phase breakdown over %d offloads: encode %v (%.0f%%), dispatch %v (%.0f%%), decode %v (%.0f%%)\n",
			m.Phases.Offloads,
			m.Phases.Encode, pct(m.Phases.Encode),
			m.Phases.Dispatch, pct(m.Phases.Dispatch),
			m.Phases.Decode, pct(m.Phases.Decode))
	}
	if *malicious >= 0 {
		fmt.Printf("integrity: %d requests rejected with tampered-GPU detection\n", integ)
		if integ == 0 && ok > 0 {
			fmt.Println("note: the tampering GPU's gang was never leased; raise -clients or lower -workers")
		}
	} else if integ+failed > 0 {
		fmt.Printf("errors: %d integrity, %d other\n", integ, failed)
	}
	tr := srv.GPUTraffic()
	fmt.Printf("GPUs: %d jobs, %d bytes in, %d bytes out\n", tr.Jobs, tr.BytesIn, tr.BytesOut)
}

func cmdLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	modelName := fs.String("model", "tiny", "model architecture")
	k := fs.Int("k", 4, "virtual batch size K")
	workers := fs.Int("workers", 2, "inference pipelines")
	maxClients := fs.Int("maxclients", 16, "largest client count in the sweep")
	duration := fs.Duration("duration", time.Second, "load duration per step")
	maxWait := fs.Duration("maxwait", 2*time.Millisecond, "batching deadline")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	if *k < 1 {
		log.Fatalf("loadgen: -k %d invalid, need K >= 1", *k)
	}
	data := darknight.SyntheticDataset(256, 4, 1, 8, 8, *seed+1)
	images := make([][]float64, len(data))
	for i := range images {
		images[i] = data[i].Image
	}

	fmt.Printf("load sweep: %s, K=%d, %d workers, %v per step\n", *modelName, *k, *workers, *duration)
	fmt.Printf("%8s %12s %12s %12s %10s\n", "clients", "req/s", "p50", "p99", "occupancy")
	for clients := 1; clients <= *maxClients; clients *= 2 {
		srv, err := darknight.NewServer(func() *darknight.Model { return buildModel(*modelName, *seed) }, darknight.ServerConfig{
			Config:  darknight.Config{VirtualBatch: *k, Seed: *seed},
			Workers: *workers,
			MaxWait: *maxWait,
		})
		if err != nil {
			log.Fatal(err)
		}
		runLoad(srv, images, clients, *duration)
		m := srv.Metrics()
		srv.Close()
		fmt.Printf("%8d %12.0f %12v %12v %10.2f\n", clients, m.Throughput, m.P50, m.P99, m.Occupancy)
	}
}
