package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"darknight"
)

// cmdSnapshot fetches a state snapshot from a running server's
// observability listener and writes it to a file — the capture half of
// snapshot-to-replay incident debugging.
func cmdSnapshot(args []string) {
	fs := flag.NewFlagSet("snapshot", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "observability listener of the running server (its -metrics-addr)")
	out := fs.String("o", "snapshot.json", "output file")
	timeout := fs.Duration("timeout", 10*time.Second, "fetch timeout")
	fs.Parse(args)

	url := fmt.Sprintf("http://%s/snapshot", *addr)
	client := &http.Client{Timeout: *timeout}
	resp, err := client.Get(url)
	if err != nil {
		log.Fatalf("snapshot: fetching %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		log.Fatalf("snapshot: %s returned %s: %s", url, resp.Status, body)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	n, err := io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatalf("snapshot: writing %s: %v", *out, err)
	}
	// Re-read through the loader so a truncated or incompatible capture
	// fails here, not at replay time.
	snap, err := darknight.LoadSnapshot(*out)
	if err != nil {
		log.Fatalf("snapshot: %s did not validate: %v", *out, err)
	}
	fmt.Printf("snapshot: %d bytes to %s (v%d, %d batches, %d events, model %s)\n",
		n, *out, snap.Version, len(snap.Batches), len(snap.Events), snap.Model.Name)
}

// cmdReplay re-runs a captured incident deterministically: it rebuilds
// the snapshot's cluster, fleet, and model, replays the recorded batch
// window, and exits nonzero if any batch outcome or event projection
// diverges from the capture.
func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	path := fs.String("snapshot", "", "snapshot file to replay (required)")
	modelName := fs.String("model", "", "override the model arch recorded in the snapshot")
	seed := fs.Int64("seed", -1, "override the model seed recorded in the snapshot")
	verbose := fs.Bool("v", false, "print progress lines")
	fs.Parse(args)
	if *path == "" {
		log.Fatal("replay: -snapshot FILE is required")
	}

	snap, err := darknight.LoadSnapshot(*path)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	var model *darknight.Model
	if *modelName != "" || *seed >= 0 {
		arch := snap.Model.Arch
		if *modelName != "" {
			arch = *modelName
		}
		sd := snap.Model.Seed
		if *seed >= 0 {
			sd = *seed
		}
		model, err = darknight.BuildModel(arch, sd)
		if err != nil {
			log.Fatalf("replay: %v", err)
		}
	}
	opts := darknight.ReplayOptions{RecorderSize: len(snap.Events) + 16*len(snap.Batches) + 64}
	if *verbose {
		opts.Logf = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }
	}
	rep, err := darknight.Replay(snap, model, opts)
	if err != nil {
		log.Fatalf("replay: %v", err)
	}
	fmt.Println(rep.Summary())
	if !rep.OK() {
		for _, m := range rep.Mismatches {
			fmt.Printf("  %s\n", m)
		}
		os.Exit(1)
	}
}
