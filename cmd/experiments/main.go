// Command experiments regenerates every table and figure from the paper's
// evaluation section in one run. The accuracy experiment (Figure 4) trains
// real models and takes a couple of minutes; skip it with -skip-training.
//
// Usage:
//
//	go run ./cmd/experiments [-skip-training] [-fig4-epochs N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"darknight/internal/experiments"
)

func main() {
	skipTraining := flag.Bool("skip-training", false, "skip the Figure 4 training experiment")
	fig4Epochs := flag.Int("fig4-epochs", 0, "override Figure 4 epoch count (0 = default)")
	flag.Parse()
	log.SetFlags(0)

	out := os.Stdout
	section := func(s string) { fmt.Fprintf(out, "\n%s\n", s) }

	section(experiments.RenderTable1(experiments.Table1()))
	section(experiments.RenderTable2(experiments.Table2()))
	section(experiments.RenderTable3(experiments.Table3()))
	section(experiments.RenderTable4(experiments.Table4()))
	section(experiments.RenderFigure3(experiments.Figure3()))

	if !*skipTraining {
		cfg := experiments.DefaultFigure4Config()
		if *fig4Epochs > 0 {
			cfg.Epochs = *fig4Epochs
		}
		fmt.Fprintln(out, "\nRunning Figure 4 training experiment (use -skip-training to skip)...")
		series, err := experiments.Figure4(cfg)
		if err != nil {
			log.Fatalf("figure 4: %v", err)
		}
		section(experiments.RenderFigure4(series))
	}

	section(experiments.RenderFigure5(experiments.Figure5()))
	section(experiments.RenderFigure6a(experiments.Figure6a()))
	section(experiments.RenderFigure6b(experiments.Figure6b()))
	section(experiments.RenderFigure7(experiments.Figure7()))
}
