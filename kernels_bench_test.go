package darknight

// BenchmarkKernels measures the PR2 kernel overhaul against the retained
// seed kernels (the *Ref implementations): blocked/parallel float matmul
// and conv, and the lazy-reduction zero-allocation coding path. The
// headline pair is codedforward/{ref,fused} — the TEE-side
// encode → dispatch → decode loop of one bilinear layer — whose ratio is
// recorded in BENCH_PR2.json and enforced (with slack for timer noise) by
// TestCodedForwardSpeedup.

import (
	"math/rand"
	"testing"
	"time"

	"darknight/internal/field"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/tensor"
)

// codedBench is one coded-forward fixture: a conv layer, a drawn code and
// the K quantized activations, plus preallocated buffers for the fused
// (allocation-free) path.
type codedBench struct {
	layer *nn.Conv2D
	code  *masking.Code
	wq    field.Vec
	ins   []field.Vec
	rng   *rand.Rand

	noise   []field.Vec
	coded   []field.Vec
	decoded []field.Vec
}

func newCodedBench(b testing.TB) *codedBench {
	rng := rand.New(rand.NewSource(3))
	p := tensor.ConvParams{InC: 8, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 16, InW: 16, Groups: 1}
	layer := nn.NewConv2D("bench", p, rng)
	code, err := masking.New(masking.Params{K: 4, M: 1, Redundancy: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cb := &codedBench{layer: layer, code: code, rng: rng}
	cb.wq = field.RandVec(rng, layer.WLen())
	n := layer.InLen()
	cb.ins = make([]field.Vec, code.K)
	for i := range cb.ins {
		cb.ins[i] = field.RandVec(rng, n)
	}
	cb.noise = make([]field.Vec, code.M)
	for i := range cb.noise {
		cb.noise[i] = field.NewVec(n)
	}
	cb.coded = make([]field.Vec, code.NumCoded())
	for i := range cb.coded {
		cb.coded[i] = field.NewVec(n)
	}
	cb.decoded = make([]field.Vec, code.K)
	for i := range cb.decoded {
		cb.decoded[i] = field.NewVec(layer.OutLen())
	}
	return cb
}

// forwardRef runs the seed coded forward path: per-term AXPY encode, the
// MulAdd-per-element GPU kernel, per-term AXPY decode — all freshly
// allocating, exactly as before PR2.
func (cb *codedBench) forwardRef(b testing.TB) []field.Vec {
	coded, err := cb.code.EncodeRef(cb.ins, cb.rng)
	if err != nil {
		b.Fatal(err)
	}
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = cb.layer.LinearForwardFieldRef(cb.wq, coded[j])
	}
	decoded, err := cb.code.DecodeForwardRef(results)
	if err != nil {
		b.Fatal(err)
	}
	return decoded
}

// forwardFused runs the PR2 path: noise drawn into reused buffers, fused
// lazy-reduction encode into reused buffers, the lazy-reduction pooled GPU
// kernel, fused decode into reused buffers.
func (cb *codedBench) forwardFused(b testing.TB) []field.Vec {
	for i := range cb.noise {
		field.RandVecInto(cb.rng, cb.noise[i])
	}
	if err := cb.code.EncodeWith(cb.coded, cb.ins, cb.noise); err != nil {
		b.Fatal(err)
	}
	results := make([]field.Vec, len(cb.coded))
	for j := range cb.coded {
		results[j] = cb.layer.LinearForwardField(cb.wq, cb.coded[j])
	}
	if err := cb.code.DecodeForwardInto(cb.decoded, results); err != nil {
		b.Fatal(err)
	}
	return cb.decoded
}

func BenchmarkKernels(b *testing.B) {
	// --- matmul: blocked/parallel vs seed i-k-j ---
	const mm = 128
	rng := rand.New(rand.NewSource(1))
	ma := tensor.New(mm, mm)
	mb := tensor.New(mm, mm)
	ma.RandNormal(rng, 1)
	mb.RandNormal(rng, 1)
	b.Run("matmul/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulRef(ma, mb)
		}
	})
	b.Run("matmul/blocked", func(b *testing.B) {
		dst := tensor.New(mm, mm)
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(dst, ma, mb)
		}
	})

	// --- conv: pooled patch buffers + Into matmuls vs seed (fresh im2col +
	// naive matmul + result copy) ---
	p := tensor.ConvParams{InC: 8, OutC: 16, KH: 3, KW: 3, Stride: 1, Pad: 1, InH: 16, InW: 16, Groups: 1}
	img := make([]float64, p.InC*p.InH*p.InW)
	for i := range img {
		img[i] = rng.NormFloat64()
	}
	w := tensor.New(p.OutC, p.InC, p.KH, p.KW)
	w.RandNormal(rng, 0.1)
	bias := make([]float64, p.OutC)
	rows := p.InC * p.KH * p.KW
	npix := p.OutH() * p.OutW()
	b.Run("conv/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The seed Conv2D: allocate the patch matrix, naive matmul,
			// copy the result block.
			cols := tensor.Im2Col(img, p)
			out := tensor.New(p.OutC, p.OutH(), p.OutW())
			wg := tensor.FromSlice(w.Data, p.OutC, rows)
			cg := tensor.FromSlice(cols.Data, rows, npix)
			res := tensor.MatMulRef(wg, cg)
			copy(out.Data, res.Data)
		}
	})
	b.Run("conv/blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.Conv2D(img, w, bias, p)
		}
	})

	// --- encode / decode: fused lazy-reduction vs per-term AXPY ---
	cb := newCodedBench(b)
	b.Run("encode/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cb.code.EncodeRef(cb.ins, cb.rng); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for m := range cb.noise {
				field.RandVecInto(cb.rng, cb.noise[m])
			}
			if err := cb.code.EncodeWith(cb.coded, cb.ins, cb.noise); err != nil {
				b.Fatal(err)
			}
		}
	})
	results := make([]field.Vec, len(cb.coded))
	for j := range cb.coded {
		results[j] = field.RandVec(cb.rng, cb.layer.InLen())
	}
	decodedDst := make([]field.Vec, cb.code.K)
	for i := range decodedDst {
		decodedDst[i] = field.NewVec(cb.layer.InLen())
	}
	b.Run("decode/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cb.code.DecodeForwardRef(results); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := cb.code.DecodeForwardInto(decodedDst, results); err != nil {
				b.Fatal(err)
			}
		}
	})

	// --- the headline: TEE-side coded forward path of one conv layer ---
	b.Run("codedforward/ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cb.forwardRef(b)
		}
	})
	b.Run("codedforward/fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cb.forwardFused(b)
		}
	})
}

// timeIt returns the best-of-three wall clock of n iterations of f.
func timeIt(n int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for r := 0; r < 3; r++ {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// TestCodedForwardSpeedup enforces the PR2 kernel win: the fused coded
// forward path (encode → dispatch kernel → decode) must beat the retained
// seed kernels by at least 2.5x. BenchmarkKernels reports the precise
// ratio; this gate uses best-of-three timing to shrug off scheduler noise.
func TestCodedForwardSpeedup(t *testing.T) {
	cb := newCodedBench(t)
	// Equivalence first: same code, same inputs — the fused path must
	// decode to the identical result (noise rows differ per draw, but the
	// decode cancels them exactly, so decoded outputs match bit-for-bit).
	want := cb.forwardRef(t)
	got := cb.forwardFused(t)
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("fused coded forward diverges from reference at input %d", i)
		}
	}

	if raceEnabled {
		t.Skip("race instrumentation distorts kernel timing; the equivalence half ran, the speedup gate needs a plain build")
	}
	if testing.Short() {
		t.Skip("wall-clock speedup gate skipped in -short mode")
	}
	// Measured headroom is ~3.2x against the 2.5x gate; retry with longer
	// runs before failing so a loaded machine doesn't flake the suite.
	const minRatio = 2.5
	ratio := 0.0
	for attempt, iters := 0, 12; attempt < 3; attempt, iters = attempt+1, iters*2 {
		ref := timeIt(iters, func() { cb.forwardRef(t) })
		fused := timeIt(iters, func() { cb.forwardFused(t) })
		if r := float64(ref) / float64(fused); r > ratio {
			ratio = r
		}
		t.Logf("attempt %d (%d iters): ref %v, fused %v (%.2fx)", attempt+1, iters, ref, fused, ratio)
		if ratio >= minRatio {
			break
		}
	}
	if ratio < minRatio {
		t.Fatalf("fused coded forward path is only %.2fx faster than the seed kernels, want >= %.1fx", ratio, minRatio)
	}
}
