package darknight

// Ablation benchmarks for the design choices the paper (and DESIGN.md)
// call out: virtual batch size K, collusion tolerance M, integrity
// redundancy E, Algorithm 2 shard granularity, and pipelining. The
// hardware-model ablations report modelled seconds; the functional
// ablations measure this implementation's real work.

import (
	"fmt"
	"testing"

	"darknight/internal/enclave"
	"darknight/internal/field"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/perf"
	"darknight/internal/sched"
	mrand "math/rand"
)

// BenchmarkAblationVirtualBatch sweeps K on the hardware model (VGG16
// training): larger K amortizes enclave overheads until the EPC knee.
func BenchmarkAblationVirtualBatch(b *testing.B) {
	p := perf.Default()
	w := perf.NewWorkload(nn.VGG16Arch())
	for _, k := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = perf.DarKnightTrain(p, w, perf.Coding{K: k, M: 1}, false).Total()
			}
			b.ReportMetric(total*1000, "model-ms/img")
		})
	}
}

// BenchmarkAblationCollusion sweeps M: every extra tolerated colluder
// costs one more noise vector, GPU and coded transfer.
func BenchmarkAblationCollusion(b *testing.B) {
	p := perf.Default()
	w := perf.NewWorkload(nn.VGG16Arch())
	for _, m := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total = perf.DarKnightTrain(p, w, perf.Coding{K: 2, M: m}, false).Total()
			}
			b.ReportMetric(total*1000, "model-ms/img")
			b.ReportMetric(float64(perf.Coding{K: 2, M: m}.Width()), "gpus")
		})
	}
}

// BenchmarkAblationIntegrity compares E=0/1/2 on the functional stack:
// verification doubles the decode and E=2 buys attribution.
func BenchmarkAblationIntegrity(b *testing.B) {
	for _, e := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("E=%d", e), func(b *testing.B) {
			model := TinyCNN(1, 8, 8, 4, 1)
			sys, err := NewSystem(model, Config{VirtualBatch: 2, Redundancy: e, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			data := SyntheticDataset(2, 4, 1, 8, 8, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.TrainBatch(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationShardSize sweeps the Algorithm 2 shard granularity on
// the functional enclave: finer shards mean more seal operations for the
// same bytes.
func BenchmarkAblationShardSize(b *testing.B) {
	for _, shard := range []int{64, 512, 0 /* single shard */} {
		b.Run(fmt.Sprintf("shard=%d", shard), func(b *testing.B) {
			rng := mrand.New(mrand.NewSource(1))
			model := nn.TinyCNN(1, 8, 8, 4, rng)
			cluster := gpu.NewHonestCluster(3)
			encl, err := enclave.New(enclave.DefaultEPCBytes)
			if err != nil {
				b.Fatal(err)
			}
			tr, err := sched.NewTrainer(sched.Config{VirtualBatch: 2, Seed: 1}, model, cluster, encl)
			if err != nil {
				b.Fatal(err)
			}
			data := SyntheticDataset(8, 4, 1, 8, 8, 2)
			opt := nn.NewSGD(0.01, 0)
			b.ResetTimer()
			var stats sched.AggregationStats
			for i := 0; i < b.N; i++ {
				_, stats, err = tr.TrainLargeBatch(data, opt, shard)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(stats.Shards), "shards")
			b.ReportMetric(float64(stats.SealedBytes), "sealed-bytes")
		})
	}
}

// BenchmarkAblationPipelining reports the modelled pipelined-vs-serial gap
// per model (the Fig 5 design choice).
func BenchmarkAblationPipelining(b *testing.B) {
	p := perf.Default()
	for _, arch := range []*nn.Arch{nn.VGG16Arch(), nn.ResNet50Arch(), nn.MobileNetV2Arch()} {
		w := perf.NewWorkload(arch)
		b.Run(arch.Name, func(b *testing.B) {
			var serial, pipe float64
			for i := 0; i < b.N; i++ {
				serial = perf.DarKnightTrain(p, w, perf.Coding{K: 2, M: 1}, false).Total()
				pipe = perf.DarKnightTrain(p, w, perf.Coding{K: 2, M: 1}, true).Total()
			}
			b.ReportMetric(serial/pipe, "pipeline-gain-x")
		})
	}
}

// BenchmarkFieldOps measures the F_p primitives that dominate enclave-side
// encode/decode work.
func BenchmarkFieldOps(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	x := field.RandVec(rng, 4096)
	y := field.RandVec(rng, 4096)
	s := field.RandNonZero(rng)
	b.Run("Dot4096", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			field.Dot(x, y)
		}
	})
	b.Run("AXPY4096", func(b *testing.B) {
		dst := y.Clone()
		for i := 0; i < b.N; i++ {
			field.AXPY(dst, s, x)
		}
	})
	b.Run("Inv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			field.MustInv(s)
		}
	})
}

// BenchmarkMaskingCode measures fresh-code generation and encode/decode at
// the paper's operating points.
func BenchmarkMaskingCode(b *testing.B) {
	rng := mrand.New(mrand.NewSource(1))
	for _, params := range []masking.Params{
		{K: 2, M: 1}, {K: 4, M: 1, Redundancy: 1}, {K: 4, M: 2, Redundancy: 1},
	} {
		name := fmt.Sprintf("K%dM%dE%d", params.K, params.M, params.Redundancy)
		b.Run("New/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := masking.New(params, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Encode4096/"+name, func(b *testing.B) {
			code, err := masking.New(params, rng)
			if err != nil {
				b.Fatal(err)
			}
			inputs := make([]field.Vec, params.K)
			for i := range inputs {
				inputs[i] = field.RandVec(rng, 4096)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := code.Encode(inputs, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
