package darknight

// One benchmark per paper artifact. Each bench regenerates its table or
// figure through the experiment library and reports the headline numbers
// as benchmark metrics, so `go test -bench=. -benchmem` reproduces the
// whole evaluation. EXPERIMENTS.md records paper-vs-measured per artifact.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darknight/internal/experiments"
)

// BenchmarkTable1 regenerates the per-op GPU-over-SGX speedups (VGG16).
func BenchmarkTable1(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	b.ReportMetric(rows[0].Linear, "fwd-linear-x")
	b.ReportMetric(rows[1].Linear, "bwd-linear-x")
	b.ReportMetric(rows[0].Total, "fwd-total-x")
	b.ReportMetric(rows[1].Total, "bwd-total-x")
}

// BenchmarkTable2 regenerates the qualitative capability matrix.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2()
	}
	b.ReportMetric(float64(len(rows)), "methods")
}

// BenchmarkTable3 regenerates the training-time breakdown fractions.
func BenchmarkTable3(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3()
	}
	for _, r := range rows {
		b.ReportMetric(r.DarKnight.NonLinear, r.Model+"-dk-nonlinear")
		b.ReportMetric(r.Baseline.Linear, r.Model+"-base-linear")
	}
}

// BenchmarkTable4 regenerates the non-private 3-GPU speedups.
func BenchmarkTable4(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4()
	}
	for _, r := range rows {
		b.ReportMetric(r.OverDarKnight, r.Model+"-over-dk-x")
		b.ReportMetric(r.OverSGXOnly, r.Model+"-over-sgx-x")
	}
}

// BenchmarkFigure3 regenerates the aggregation speedup curve.
func BenchmarkFigure3(b *testing.B) {
	var rows []experiments.Figure3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure3()
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedups[4], r.Model+"-K4-x")
	}
}

// BenchmarkFigure4 runs the raw-vs-DarKnight training accuracy experiment
// (reduced scale; see DESIGN.md for the substitution).
func BenchmarkFigure4(b *testing.B) {
	var series []experiments.Figure4Series
	for i := 0; i < b.N; i++ {
		var err error
		series, err = experiments.Figure4(experiments.QuickFigure4Config())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range series {
		b.ReportMetric(s.FinalGap, s.Model+"-acc-gap")
	}
}

// BenchmarkFigure5 regenerates the training speedups (pipelined and not).
func BenchmarkFigure5(b *testing.B) {
	var rows []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure5()
	}
	for _, r := range rows {
		b.ReportMetric(r.NonPipelined, r.Model+"-x")
		b.ReportMetric(r.Pipelined, r.Model+"-pipe-x")
	}
}

// BenchmarkFigure6a regenerates the inference comparison.
func BenchmarkFigure6a(b *testing.B) {
	var rows []experiments.Figure6aRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure6a()
	}
	for _, r := range rows {
		b.ReportMetric(r.DarKnight4, r.Model+"-dk4-x")
		b.ReportMetric(r.Slalom, r.Model+"-slalom-x")
	}
}

// BenchmarkFigure6b regenerates the virtual-batch-size scan.
func BenchmarkFigure6b(b *testing.B) {
	var rows []experiments.Figure6bRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure6b()
	}
	for _, r := range rows {
		if r.K == 4 || r.K == 6 {
			b.ReportMetric(r.Total, "K"+string(rune('0'+r.K))+"-total-x")
		}
	}
}

// BenchmarkFigure7 regenerates the SGX multithreading latency curve.
func BenchmarkFigure7(b *testing.B) {
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure7()
	}
	b.ReportMetric(rows[len(rows)-1].Latency, "4-thread-latency-x")
}

// serveThroughput drives n closed-loop requests through a one-worker K=4
// server at the given client concurrency and returns requests/second.
// maxWait < 0 flushes every batch immediately (one real row + K-1 dummy
// rows per dispatch — the sequential one-request-at-a-time baseline);
// with concurrent clients and a positive maxWait the batcher coalesces
// real rows into full batches on the same gang of devices.
func serveThroughput(tb testing.TB, clients, n int, maxWait time.Duration) float64 {
	tb.Helper()
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config:  Config{VirtualBatch: 4, Seed: 1, EnclaveBytes: -1},
		Workers: 1,
		MaxWait: maxWait,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return float64(n) / time.Since(start).Seconds()
}

// BenchmarkServing measures concurrent batched serving against the
// sequential one-request-at-a-time baseline at K=4 (same model, same
// single worker, same device gang) and reports the speedup. Dynamic
// K-batching amortizes one coded dispatch over up to K real rows, so the
// batched-x metric sits near K.
func BenchmarkServing(b *testing.B) {
	var seq, batched float64
	for i := 0; i < b.N; i++ {
		seq = serveThroughput(b, 1, 32, -1)
		batched = serveThroughput(b, 16, 128, 5*time.Millisecond)
	}
	b.ReportMetric(seq, "seq-req/s")
	b.ReportMetric(batched, "batched-req/s")
	b.ReportMetric(batched/seq, "batched-x")
}

// TestServingBatchedSpeedup enforces the serving win: batched concurrent
// throughput must be at least 2x the sequential baseline at K=4.
func TestServingBatchedSpeedup(t *testing.T) {
	seq := serveThroughput(t, 1, 32, -1)
	batched := serveThroughput(t, 16, 128, 5*time.Millisecond)
	if batched < 2*seq {
		t.Fatalf("batched throughput %.0f req/s < 2x sequential %.0f req/s", batched, seq)
	}
	t.Logf("sequential %.0f req/s, batched %.0f req/s (%.1fx)", seq, batched, batched/seq)
}

// BenchmarkMaskedTrainingStep measures the wall-clock cost of one full
// masked virtual-batch step on the functional stack (TinyCNN, K=2) — the
// reproduction's own overhead, not the paper hardware model.
func BenchmarkMaskedTrainingStep(b *testing.B) {
	model := TinyCNN(1, 8, 8, 4, 1)
	sys, err := NewSystem(model, Config{VirtualBatch: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := SyntheticDataset(2, 4, 1, 8, 8, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.TrainBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaskedInference measures one masked K=2 inference on the
// functional stack.
func BenchmarkMaskedInference(b *testing.B) {
	model := TinyCNN(1, 8, 8, 4, 1)
	sys, err := NewSystem(model, Config{VirtualBatch: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := SyntheticDataset(2, 4, 1, 8, 8, 2)
	images := [][]float64{data[0].Image, data[1].Image}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Predict(images); err != nil {
			b.Fatal(err)
		}
	}
}
