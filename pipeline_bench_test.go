package darknight

// PR4 benchmarks: what overlapped encode→dispatch→decode execution buys
// when a dispatch costs real device time. A synthetic per-dispatch latency
// is welded into every device (gpu.NewSlow) so the serial engine pays it
// once per offload while the pipelined engine hides one batch's flight
// behind its neighbors' TEE work. Measured numbers are recorded in
// BENCH_PR4.json; the win is enforced by TestPipelineSpeedup.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"darknight/internal/gpu"
	"darknight/internal/nn"
	"darknight/internal/sched"
)

// schedThroughput pushes `batches` K=2 virtual batches through the sched
// runtime on a gang whose every device carries `delay` per-dispatch
// latency, and returns batches/second. depth <= 1 runs the serial
// Inferencer; depth >= 2 runs the Pipeline with that many lanes.
func schedThroughput(tb testing.TB, depth, batches int, delay time.Duration) float64 {
	tb.Helper()
	cfg := sched.Config{VirtualBatch: 2, Seed: 1}
	const gang = 3 // K + M = 2 + 1, E = 0
	devs := make([]gpu.Device, gang)
	for i := range devs {
		devs[i] = gpu.NewSlow(gpu.NewHonest(i), delay)
	}
	cluster := gpu.NewCluster(devs...)
	model := nn.TinyCNN(1, 8, 8, 4, rand.New(rand.NewSource(1)))
	rng := rand.New(rand.NewSource(2))
	imgs := make([][][]float64, batches)
	for b := range imgs {
		imgs[b] = make([][]float64, cfg.VirtualBatch)
		for i := range imgs[b] {
			img := make([]float64, 64)
			for j := range img {
				img[j] = rng.Float64()
			}
			imgs[b][i] = img
		}
	}

	if depth <= 1 {
		inf, err := sched.NewInferencer(cfg, model, nil, "bser/")
		if err != nil {
			tb.Fatal(err)
		}
		start := time.Now()
		for _, images := range imgs {
			if _, err := inf.Predict(cluster, images); err != nil {
				tb.Fatal(err)
			}
		}
		return float64(batches) / time.Since(start).Seconds()
	}

	pipe, err := sched.NewPipeline(cfg, model, nil, "bpipe/", depth)
	if err != nil {
		tb.Fatal(err)
	}
	defer pipe.Close()
	start := time.Now()
	tickets := make([]*sched.Ticket, batches)
	for b, images := range imgs {
		tk, err := pipe.Submit(cluster, images)
		if err != nil {
			tb.Fatal(err)
		}
		tickets[b] = tk
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			tb.Fatal(err)
		}
	}
	return float64(batches) / time.Since(start).Seconds()
}

// TestPipelineSpeedup enforces the tentpole win: with a synthetic 1ms
// per-dispatch device latency, the depth-2 pipeline must reach at least
// 1.5x the serial engine's throughput on the same gang (measured ~1.9x;
// the gate is conservative for noisy CI runners). Equivalence is pinned
// separately — sched.TestPipelineMatchesSerial shows the outputs are
// bit-identical, so this speedup is free of accuracy cost.
func TestPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const delay = time.Millisecond
	best := 0.0
	for i := 0; i < 3 && best < 1.5; i++ {
		serial := schedThroughput(t, 1, 16, delay)
		piped := schedThroughput(t, 2, 16, delay)
		if x := piped / serial; x > best {
			best = x
		}
	}
	if best < 1.5 {
		t.Fatalf("pipeline speedup %.2fx, want >= 1.5x over the serial engine", best)
	}
	t.Logf("pipeline speedup %.2fx", best)
}

// pipelinedServeThroughput drives n closed-loop requests through a
// one-worker K=4 server whose devices all carry `delay` per-dispatch
// latency, at the given pipeline depth (0 = serial engine), and returns
// requests/second plus the final metrics snapshot.
func pipelinedServeThroughput(tb testing.TB, depth, clients, n int, delay time.Duration) (float64, ServerMetrics) {
	tb.Helper()
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config: Config{
			VirtualBatch: 4,
			Seed:         1,
			EnclaveBytes: -1,
			SlowDelay:    delay,
		},
		Workers:       1,
		PipelineDepth: depth,
		MaxWait:       5 * time.Millisecond,
		SlowAll:       true,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return float64(n) / elapsed, srv.Metrics()
}

// BenchmarkPipeline measures end-to-end pipelined serving against the
// serial engine on identical per-worker gangs with a 1ms synthetic device
// latency, and reports the overlap ratio and noise-pool hit rate the
// metrics expose.
func BenchmarkPipeline(b *testing.B) {
	const delay = time.Millisecond
	var serial, piped float64
	var m ServerMetrics
	for i := 0; i < b.N; i++ {
		serial, _ = pipelinedServeThroughput(b, 0, 16, 96, delay)
		piped, m = pipelinedServeThroughput(b, 2, 16, 96, delay)
	}
	b.ReportMetric(serial, "serial-req/s")
	b.ReportMetric(piped, "pipelined-req/s")
	b.ReportMetric(piped/serial, "pipeline-x")
	b.ReportMetric(m.Overlap, "overlap-ratio")
	b.ReportMetric(m.NoisePool.HitRate(), "pool-hit-rate")
}
