package darknight_test

import (
	"fmt"

	"darknight"
)

// Example trains one private batch end to end: the inputs are masked in
// the enclave, the linear algebra runs on simulated untrusted GPUs, and
// the gradient decodes exactly.
func Example() {
	model := darknight.TinyCNN(1, 8, 8, 4, 1)
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch: 2,
		Redundancy:   1, // integrity verification on
		Seed:         7,
	})
	if err != nil {
		panic(err)
	}
	batch := darknight.SyntheticDataset(8, 4, 1, 8, 8, 3)
	if _, err := sys.TrainBatch(batch); err != nil {
		panic(err)
	}
	fmt.Println("private step ok:", sys.GPUTraffic().Jobs > 0)
	// Output: private step ok: true
}
