//go:build !race

package darknight

const raceEnabled = false
