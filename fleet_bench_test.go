package darknight

// Fleet-layer benchmarks for PR3: what the self-healing fleet manager
// costs on the grant hot path (vs the raw PR1 lease manager it replaced)
// and what straggler-tolerant quorum decoding buys when a device in the
// gang is slow. Measured numbers are recorded in BENCH_PR3.json and the
// straggler win is enforced (with slack for timer noise) by
// TestStragglerToleranceSpeedup.

import (
	"context"
	"testing"
	"time"

	"darknight/internal/fleet"
	"darknight/internal/gpu"
)

// BenchmarkFleet/acquire-fleet vs acquire-lease: one grant+release cycle
// of a 6-device gang from a 12-device pool, fleet manager against the raw
// LeaseManager. The delta is the price of health bookkeeping, fair-share
// arbitration and EWMA-sorted device selection.
func BenchmarkFleet(b *testing.B) {
	const (
		pool = 12
		gang = 6
	)
	b.Run("acquire-fleet", func(b *testing.B) {
		m := fleet.NewManager(gpu.NewHonestCluster(pool), fleet.Config{})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g, err := m.Acquire(ctx, "bench", gang)
			if err != nil {
				b.Fatal(err)
			}
			g.Release()
		}
	})
	b.Run("acquire-lease", func(b *testing.B) {
		lm := gpu.NewLeaseManager(gpu.NewHonestCluster(pool))
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := lm.Acquire(ctx, gang)
			if err != nil {
				b.Fatal(err)
			}
			l.Release()
		}
	})
}

// stragglerThroughput serves n requests through a gang that contains one
// deterministically slow device (no spares: the fleet cannot route around
// it, only the quorum decode can) and returns requests/second.
func stragglerThroughput(tb testing.TB, slack, clients, n int, delay time.Duration) float64 {
	tb.Helper()
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config: Config{
			VirtualBatch: 2,
			Redundancy:   2, // E=2: one equation for verification, one of slack
			Seed:         1,
			EnclaveBytes: -1,
			SlowGPUs:     []int{4},
			SlowDelay:    delay,
		},
		Workers:        1,
		MaxWait:        time.Millisecond,
		StragglerSlack: slack,
	})
	if err != nil {
		tb.Fatal(err)
	}
	defer srv.Close()
	data := SyntheticDataset(n, 4, 1, 8, 8, 2)

	done := make(chan struct{}, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := c; i < n; i += clients {
				if _, err := srv.Infer(context.Background(), data[i].Image); err != nil {
					tb.Errorf("request %d: %v", i, err)
				}
			}
			done <- struct{}{}
		}(c)
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	return float64(n) / time.Since(start).Seconds()
}

// BenchmarkStragglerTolerance measures serving throughput with one slow
// device welded into the gang: waiting for every response (slack 0)
// against decoding from the first S+1 responses (slack 1). The MDS
// property means the slack path pays no accuracy: the decode is
// bit-for-bit the full decode.
func BenchmarkStragglerTolerance(b *testing.B) {
	const delay = 2 * time.Millisecond
	var waitAll, quorum float64
	for i := 0; i < b.N; i++ {
		waitAll = stragglerThroughput(b, 0, 4, 24, delay)
		quorum = stragglerThroughput(b, 1, 4, 24, delay)
	}
	b.ReportMetric(waitAll, "wait-all-req/s")
	b.ReportMetric(quorum, "quorum-req/s")
	b.ReportMetric(quorum/waitAll, "tolerance-x")
}

// TestStragglerToleranceSpeedup enforces the quorum win: with a 2ms
// straggler welded into every gang, decode-from-first-S+1 must be at least
// 2x the wait-for-all baseline (measured ~8-10x; the gate is conservative
// for noisy CI runners).
func TestStragglerToleranceSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	const delay = 2 * time.Millisecond
	best := 0.0
	for i := 0; i < 3 && best < 2; i++ {
		waitAll := stragglerThroughput(t, 0, 4, 24, delay)
		quorum := stragglerThroughput(t, 1, 4, 24, delay)
		if x := quorum / waitAll; x > best {
			best = x
		}
	}
	if best < 2 {
		t.Fatalf("straggler tolerance %.2fx, want >= 2x", best)
	}
}
