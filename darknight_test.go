package darknight

import (
	"errors"
	"testing"

	"darknight/internal/masking"
)

func TestSystemEndToEnd(t *testing.T) {
	model := TinyCNN(1, 8, 8, 4, 1)
	if model.ParamCount() == 0 || model.Name() == "" {
		t.Fatal("model malformed")
	}
	sys, err := NewSystem(model, Config{VirtualBatch: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := SyntheticDataset(120, 4, 1, 8, 8, 5)
	train, test := data[:96], data[96:]
	for epoch := 0; epoch < 4; epoch++ {
		for i := 0; i+8 <= len(train); i += 8 {
			if _, err := sys.TrainBatch(train[i : i+8]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if acc := sys.Evaluate(test); acc < 0.8 {
		t.Fatalf("accuracy %.2f < 0.8", acc)
	}
	preds, err := sys.Predict([][]float64{test[0].Image, test[1].Image})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("preds = %v", preds)
	}
	if sys.GPUTraffic().Jobs == 0 {
		t.Fatal("no GPU traffic recorded")
	}
	if sys.EnclaveStats().SealOps == 0 {
		t.Fatal("no sealing recorded — Algorithm 2 not exercised")
	}
}

func TestSystemIntegrityDetection(t *testing.T) {
	model := TinyCNN(1, 8, 8, 4, 1)
	sys, err := NewSystem(model, Config{
		VirtualBatch:  2,
		Redundancy:    1,
		MaliciousGPUs: []int{1},
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := SyntheticDataset(8, 4, 1, 8, 8, 5)
	if _, err := sys.TrainBatch(data); !errors.Is(err, masking.ErrIntegrity) {
		t.Fatalf("err = %v, want integrity violation", err)
	}
}

func TestSystemConfigErrors(t *testing.T) {
	model := TinyCNN(1, 8, 8, 4, 1)
	if _, err := NewSystem(model, Config{VirtualBatch: 4, GPUs: 3}); err == nil {
		t.Fatal("undersized cluster accepted")
	}
	if _, err := NewSystem(model, Config{MaliciousGPUs: []int{99}}); err == nil {
		t.Fatal("out-of-range malicious index accepted")
	}
}

func TestSystemDefaults(t *testing.T) {
	model := TinyCNN(1, 8, 8, 4, 1)
	sys, err := NewSystem(model, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := SyntheticDataset(4, 4, 1, 8, 8, 5)
	if _, err := sys.TrainBatch(data); err != nil {
		t.Fatal(err)
	}
}

func TestModelBuilders(t *testing.T) {
	for _, m := range []*Model{
		VGG16(1, 8, 8, 4, 1, 1),
		ResNet50(1, 8, 8, 4, 1, 1),
		MobileNetV2(1, 8, 8, 4, 1, 1),
	} {
		if m.ParamCount() == 0 {
			t.Fatalf("%s has no params", m.Name())
		}
		if _, err := NewSystem(m, Config{Seed: 1}); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}

// TestPipelinedTrainingFleetQuarantine exercises the facade's training
// gang source end to end: a corrupt-every-result GPU fails the first
// pipelined TrainBatch with an attributable integrity error, the fleet
// quarantines it on release, and the next batch trains cleanly on the
// surviving devices plus spares — private training survives a malicious
// device without operator action.
func TestPipelinedTrainingFleetQuarantine(t *testing.T) {
	model := TinyCNN(1, 8, 8, 4, 1)
	sys, err := NewSystem(model, Config{
		VirtualBatch:       2,
		Redundancy:         2, // attribution needs two redundant equations
		TrainPipelineDepth: 2,
		ManagedFleet:       true,
		SpareGPUs:          2,
		MaliciousGPUs:      []int{1},
		Seed:               3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	batch := SyntheticDataset(8, 4, 1, 8, 8, 5)
	if _, err := sys.TrainBatch(batch); !errors.Is(err, masking.ErrIntegrity) {
		t.Fatalf("tampered first batch returned %v, want integrity error", err)
	}
	if fst := sys.FleetStats(); fst.QuarantineEvents == 0 {
		t.Fatalf("tamperer not quarantined: %+v", fst)
	}
	// Probation backoff (>= 100ms) keeps the offender out for the rest of
	// this test, so retraining must succeed on the surviving pool.
	if _, err := sys.TrainBatch(batch); err != nil {
		t.Fatalf("retrain after quarantine failed: %v", err)
	}
}
