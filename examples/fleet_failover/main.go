// Fleet failover: a malicious GPU is caught in the act, quarantined, and
// the service keeps running at full integrity. The paper's redundant
// decoding (§4.4) detects tampering; with E = 2 redundant equations the
// TEE can also *attribute* the fault to a device and decode the batch from
// the clean equations — so the fleet manager quarantines the offender
// mid-flight, swaps in a spare, and no client ever sees a wrong answer.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"darknight"
)

func main() {
	const (
		k   = 2
		bad = 2 // this device corrupts every result it returns
	)
	seed := int64(11)

	srv, err := darknight.NewServer(func() *darknight.Model {
		return darknight.TinyCNN(1, 8, 8, 4, seed)
	}, darknight.ServerConfig{
		Config: darknight.Config{
			VirtualBatch:  k,
			Redundancy:    2, // two redundant equations: detect AND attribute
			MaliciousGPUs: []int{bad},
			Seed:          seed,
		},
		Workers:   1,
		SpareGPUs: 2, // headroom so quarantine does not shrink the pool below a gang
		MaxWait:   2 * time.Millisecond,
		Recover:   true, // decode tampered batches from the clean equations
		Tenants: []darknight.Tenant{
			{Name: "hospital-a", Weight: 2},
			{Name: "clinic-b", Weight: 1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	data := darknight.SyntheticDataset(64, 4, 1, 8, 8, seed+1)
	fmt.Printf("fleet: %d GPUs, gang of %d per batch, GPU %d persistently malicious\n",
		1*(k+1+2)+2, k+1+2, bad)

	// Two tenants fire concurrent traffic. The very first batch that lands
	// on the malicious device fails verification; attribution fingers the
	// device, recovery re-decodes the batch from the clean equations, and
	// the health tracker pulls the device from circulation.
	const clients, perClient = 4, 12
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := "hospital-a"
			if c%2 == 1 {
				tenant = "clinic-b"
			}
			for r := 0; r < perClient; r++ {
				ex := data[(c*perClient+r)%len(data)]
				if _, err := srv.InferAs(context.Background(), tenant, ex.Image); err != nil {
					mu.Lock()
					failures++
					mu.Unlock()
					log.Printf("client %d: %v", c, err)
				}
			}
		}(c)
	}
	wg.Wait()

	m := srv.Metrics()
	st := srv.FleetStats()
	fmt.Printf("served %d requests, %d failures, %d integrity errors surfaced to clients\n",
		m.Completed, failures, m.Integrity)
	fmt.Printf("fleet health: %d healthy, %d quarantined (%d quarantine events)\n",
		st.Healthy+st.OnProbation, st.Quarantined, st.QuarantineEvents)
	for _, ev := range st.Events {
		fmt.Printf("  event: gpu %d %s -> %s (%s)\n", ev.Device, ev.From, ev.To, ev.Reason)
	}
	for _, d := range st.Devices {
		if d.Faults > 0 {
			fmt.Printf("  gpu %d [%016x]: %s after %d dispatches, %d faults — served %d batches total\n",
				d.ID, d.Fingerprint, d.State, d.Dispatches, d.Faults, d.Dispatches)
		}
	}
	fmt.Println("tenant accounting:")
	for _, tu := range st.Tenants {
		if tu.Grants > 0 {
			fmt.Printf("  %-10s weight %.0f: %d gangs, %.4f device-seconds\n",
				tu.Name, tu.Weight, tu.Grants, tu.DeviceSeconds)
		}
	}

	if st.Quarantined != 1 || m.Integrity != 0 || failures != 0 {
		log.Fatal("expected: exactly one quarantined device and zero client-visible integrity errors")
	}
	fmt.Println("malicious GPU caught, quarantined, and routed around — service never skipped a beat")
}
