// Private training: the paper's headline scenario (§3.1, Fig 4). Train the
// three scaled model families privately and compare against a float
// reference trained on the same data — the masked path must match.
package main

import (
	"fmt"
	"log"

	"darknight"
)

func main() {
	data := darknight.SyntheticDataset(300, 4, 1, 8, 8, 11)
	train, test := data[:240], data[240:]

	for _, build := range []struct {
		name    string
		model   *darknight.Model
		lr, mom float64
		epochs  int
	}{
		{"VGG-style", darknight.VGG16(1, 8, 8, 4, 1, 3), 0.01, 0.5, 5},
		{"ResNet-style", darknight.ResNet50(1, 8, 8, 4, 1, 3), 0.02, 0.5, 5},
		{"MobileNetV2-style", darknight.MobileNetV2(1, 8, 8, 4, 2, 3), 0.05, 0.5, 15},
	} {
		sys, err := darknight.NewSystem(build.model, darknight.Config{
			VirtualBatch: 2,
			LearningRate: build.lr,
			Momentum:     build.mom,
			Seed:         5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d params): ", build.name, build.model.ParamCount())
		for epoch := 0; epoch < build.epochs; epoch++ {
			for i := 0; i+8 <= len(train); i += 8 {
				if _, err := sys.TrainBatch(train[i : i+8]); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("test accuracy after %d private epochs = %.3f\n",
			build.epochs, sys.Evaluate(test))
	}
	fmt.Println("\nevery gradient above was computed from coded GPU equations (Eq 4-6)")
}
