// Private training: the paper's headline scenario (§3.1, Fig 4). Train the
// three scaled model families privately and compare against a float
// reference trained on the same data — the masked path must match. Then
// demonstrate the pipelined data-parallel trainer: the same workload on a
// fleet of slow devices, serial vs depth-3 overlapped execution, with
// bit-identical final weights and the wall-clock difference printed.
package main

import (
	"fmt"
	"log"
	"time"

	"darknight"
)

func main() {
	data := darknight.SyntheticDataset(300, 4, 1, 8, 8, 11)
	train, test := data[:240], data[240:]

	for _, build := range []struct {
		name    string
		model   *darknight.Model
		lr, mom float64
		epochs  int
	}{
		{"VGG-style", darknight.VGG16(1, 8, 8, 4, 1, 3), 0.01, 0.5, 5},
		{"ResNet-style", darknight.ResNet50(1, 8, 8, 4, 1, 3), 0.02, 0.5, 5},
		{"MobileNetV2-style", darknight.MobileNetV2(1, 8, 8, 4, 2, 3), 0.05, 0.5, 15},
	} {
		sys, err := darknight.NewSystem(build.model, darknight.Config{
			VirtualBatch: 2,
			LearningRate: build.lr,
			Momentum:     build.mom,
			Seed:         5,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d params): ", build.name, build.model.ParamCount())
		for epoch := 0; epoch < build.epochs; epoch++ {
			for i := 0; i+8 <= len(train); i += 8 {
				if _, err := sys.TrainBatch(train[i : i+8]); err != nil {
					log.Fatal(err)
				}
			}
		}
		fmt.Printf("test accuracy after %d private epochs = %.3f\n",
			build.epochs, sys.Evaluate(test))
	}
	fmt.Println("\nevery gradient above was computed from coded GPU equations (Eq 4-6)")

	// Pipelined data-parallel training: on devices with real per-dispatch
	// latency, depth-3 overlap hides one batch's GPU flight behind its
	// neighbors' TEE work — same weights, bit for bit.
	trainPipelined(train[:64])
}

func trainPipelined(batch []darknight.Example) {
	const delay = 300 * time.Microsecond
	run := func(depth int, fleet bool) (*darknight.Model, time.Duration, darknight.TrainPhaseStats) {
		model := darknight.TinyCNN(1, 8, 8, 4, 21)
		sys, err := darknight.NewSystem(model, darknight.Config{
			VirtualBatch:       2,
			Seed:               5,
			TrainPipelineDepth: depth,
			ManagedFleet:       fleet,
			SlowAll:            true,
			SlowDelay:          delay,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		start := time.Now()
		for step := 0; step < 3; step++ {
			if _, err := sys.TrainBatch(batch); err != nil {
				log.Fatal(err)
			}
		}
		return model, time.Since(start), sys.TrainPhases()
	}

	serialModel, serialT, _ := run(0, false)
	pipeModel, pipeT, ph := run(3, true)

	sw, pw := serialModel.Weights(), pipeModel.Weights()
	same := len(sw) == len(pw)
	for i := 0; same && i < len(sw); i++ {
		same = sw[i] == pw[i]
	}
	fmt.Printf("\npipelined training on %v-latency devices: serial %v -> depth-3 fleet-backed %v (%.2fx, overlap %.2f)\n",
		delay, serialT.Round(time.Millisecond), pipeT.Round(time.Millisecond),
		float64(serialT)/float64(pipeT), ph.Overlap())
	fmt.Printf("weights bit-identical to serial: %v\n", same)
}
