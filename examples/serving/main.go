// Serving: DarKnight as a concurrent private-inference service. A trained
// model is replicated across serving workers, independent clients fire
// single-image requests, and the dynamic batcher coalesces them into
// virtual batches of exactly K — the TEE's coding granularity — padding
// with uniform-noise dummy rows when a lone request's deadline expires
// before K peers arrive.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"darknight"
)

func main() {
	const k = 4
	seed := int64(42)

	// Train a model privately first, so the server demonstrably serves
	// learned weights, not initialization noise.
	trained := darknight.TinyCNN(1, 8, 8, 4, seed)
	sys, err := darknight.NewSystem(trained, darknight.Config{VirtualBatch: 2, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	data := darknight.SyntheticDataset(96, 4, 1, 8, 8, seed+1)
	for epoch := 0; epoch < 2; epoch++ {
		for i := 0; i+8 <= len(data); i += 8 {
			if _, err := sys.TrainBatch(data[i : i+8]); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("trained %s to %.2f train accuracy\n", trained.Name(), sys.Evaluate(data))

	// Every worker gets a private replica carrying the trained weights
	// (nn layers cache forward state, so replicas are never shared).
	srv, err := darknight.NewServer(func() *darknight.Model {
		m := darknight.TinyCNN(1, 8, 8, 4, seed)
		if err := m.CopyWeightsFrom(trained); err != nil {
			log.Fatal(err)
		}
		return m
	}, darknight.ServerConfig{
		Config:  darknight.Config{VirtualBatch: k, Seed: seed},
		Workers: 2,
		MaxWait: 5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Phase 1: eight concurrent clients. Their unrelated requests coalesce
	// into full K=4 batches — one coded GPU dispatch serves four clients.
	const clients, perClient = 8, 6
	var wg sync.WaitGroup
	correct := make([]int, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				ex := data[(c*perClient+r)%len(data)]
				pred, err := srv.Infer(context.Background(), ex.Image)
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				if pred == ex.Label {
					correct[c]++
				}
			}
		}(c)
	}
	wg.Wait()
	total := 0
	for _, n := range correct {
		total += n
	}
	m := srv.Metrics()
	fmt.Printf("phase 1: %d clients x %d requests, %d/%d correct\n",
		clients, perClient, total, clients*perClient)
	fmt.Printf("         %d batches, occupancy %.2f, p50 %v, p99 %v\n",
		m.Batches, m.Occupancy, m.P50, m.P99)

	// Phase 2: one lone request with no peers. The 5ms batching deadline
	// expires and the batcher flushes a partial batch padded with K-1
	// dummy rows — privacy-neutral, the dummies are uniform noise exactly
	// like the masking code's own noise rows.
	before := srv.Metrics()
	if _, err := srv.Infer(context.Background(), data[0].Image); err != nil {
		log.Fatal(err)
	}
	after := srv.Metrics()
	fmt.Printf("phase 2: lone request served after deadline padding: %d dummy rows in its batch\n",
		after.PaddedRows-before.PaddedRows)
}
