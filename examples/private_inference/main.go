// Private inference: the Fig 6 scenario. Serve predictions with DarKnight's
// forward coding and compare against the Slalom baseline (§7.2) on the same
// model — and demonstrate why Slalom's precomputed unblinding breaks the
// moment the model trains.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"darknight"
	"darknight/internal/dataset"
	"darknight/internal/nn"
	"darknight/internal/slalom"
)

func main() {
	// Shared model for both engines.
	rng := rand.New(rand.NewSource(21))
	model := nn.TinyCNN(1, 8, 8, 4, rng)
	data := dataset.SyntheticCIFAR(rand.New(rand.NewSource(22)), 16, 4, 1, 8, 8, 0.05)

	// DarKnight inference with integrity verification (K=3, E=1).
	dkModel := darknight.TinyCNN(1, 8, 8, 4, 21) // same seed → same weights
	sys, err := darknight.NewSystem(dkModel, darknight.Config{
		VirtualBatch: 3,
		Redundancy:   1,
		Seed:         23,
	})
	if err != nil {
		log.Fatal(err)
	}
	images := [][]float64{data.Items[0].Image, data.Items[1].Image, data.Items[2].Image}
	dkPreds, err := sys.Predict(images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DarKnight(3)+integrity predictions: %v\n", dkPreds)

	// Slalom inference on the identical weights.
	eng := slalom.New(model, true, 24)
	for i := 0; i < 3; i++ {
		p, err := eng.Infer(data.Items[i].Image)
		if err != nil {
			log.Fatal(err)
		}
		if p != dkPreds[i] {
			log.Fatalf("image %d: Slalom %d != DarKnight %d", i, p, dkPreds[i])
		}
	}
	fmt.Println("Slalom agrees on all predictions (same weights, honest GPUs)")

	// Now "train" one step: perturb the weights, as SGD would.
	lin := model.LinearLayers()[0]
	wd := lin.WeightData()
	for i := range wd {
		wd[i] += 0.05
	}
	x := data.Items[0].Image[:lin.InLen()]
	stale := eng.StaleDecode(0, lin, x)
	fresh := lin.LinearForwardFloat(x)
	var worst float64
	for i := range fresh {
		if d := stale[i] - fresh[i]; d > worst || -d > worst {
			if d < 0 {
				d = -d
			}
			worst = d
		}
	}
	fmt.Printf("after ONE weight update, Slalom's stale unblinding is off by up to %.1f\n", worst)
	fmt.Println("— the §7.2 failure mode; DarKnight's per-batch coding needs no precomputation")
}
