// Quickstart: train a small CNN privately on synthetic data through the
// full DarKnight pipeline — inputs are masked in the (software) enclave,
// linear algebra runs on simulated untrusted GPUs, gradients decode exactly
// — then run masked inference.
package main

import (
	"fmt"
	"log"

	"darknight"
)

func main() {
	// A model and a deployment: K=2 inputs coded per virtual batch,
	// tolerating 1 colluding GPU, on a minimal 3-GPU cluster.
	model := darknight.TinyCNN(1, 8, 8, 4, 1)
	sys, err := darknight.NewSystem(model, darknight.Config{
		VirtualBatch: 2,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}

	data := darknight.SyntheticDataset(240, 4, 1, 8, 8, 7)
	train, test := data[:192], data[192:]

	fmt.Printf("model %s (%d params) — private training on %d examples\n",
		model.Name(), model.ParamCount(), len(train))
	for epoch := 1; epoch <= 4; epoch++ {
		var loss float64
		batches := 0
		for i := 0; i+8 <= len(train); i += 8 {
			l, err := sys.TrainBatch(train[i : i+8])
			if err != nil {
				log.Fatal(err)
			}
			loss += l
			batches++
		}
		fmt.Printf("  epoch %d: loss %.4f  test acc %.3f\n",
			epoch, loss/float64(batches), sys.Evaluate(test))
	}

	// Masked inference on a virtual batch of 2 images.
	preds, err := sys.Predict([][]float64{test[0].Image, test[1].Image})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private inference: predicted %v, true [%d %d]\n",
		preds, test[0].Label, test[1].Label)

	tr := sys.GPUTraffic()
	fmt.Printf("untrusted GPUs executed %d jobs and never saw a raw input\n", tr.Jobs)
}
