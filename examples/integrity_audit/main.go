// Integrity audit: the §4.4 scenario. Run coded forward passes against
// clusters with tampering GPUs and show (a) detection with the paper's one
// redundant equation, and (b) culprit identification once a second
// redundant equation is available.
package main

import (
	"fmt"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/masking"
)

// linearMap stands in for one DNN layer's <W, ·> kernel.
func linearMap(rng *rand.Rand, n, out int) func(field.Vec) field.Vec {
	w := field.RandMat(rng, out, n)
	return func(x field.Vec) field.Vec { return field.MatVec(w, x) }
}

func main() {
	rng := rand.New(rand.NewSource(41))
	const n, out = 48, 16

	// --- Detection with E = 1 (the paper's configuration) -------------
	code, err := masking.New(masking.Params{K: 3, M: 1, Redundancy: 1}, rng)
	if err != nil {
		panic(err)
	}
	f := linearMap(rng, n, out)
	inputs := []field.Vec{field.RandVec(rng, n), field.RandVec(rng, n), field.RandVec(rng, n)}
	coded, err := code.Encode(inputs, rng)
	if err != nil {
		panic(err)
	}
	results := make([]field.Vec, len(coded))
	for j := range coded {
		results[j] = f(coded[j])
	}
	fmt.Printf("K=3, M=1, E=1: %d GPUs, honest round verifies: %v\n",
		code.NumCoded(), code.VerifyForward(results) == nil)

	// GPU 2 goes rogue.
	results[2] = results[2].Clone()
	results[2][0] = field.Add(results[2][0], 12345)
	fmt.Printf("GPU 2 tampers: verification error = %v\n", code.VerifyForward(results))

	// --- Attribution with E = 2 ---------------------------------------
	code2, err := masking.New(masking.Params{K: 3, M: 1, Redundancy: 2}, rng)
	if err != nil {
		panic(err)
	}
	coded2, err := code2.Encode(inputs, rng)
	if err != nil {
		panic(err)
	}
	results2 := make([]field.Vec, len(coded2))
	for j := range coded2 {
		results2[j] = f(coded2[j])
	}
	for culprit := 0; culprit < code2.NumCoded(); culprit++ {
		tampered := make([]field.Vec, len(results2))
		copy(tampered, results2)
		tampered[culprit] = tampered[culprit].Clone()
		tampered[culprit][0] = field.Add(tampered[culprit][0], 7)
		found, err := code2.AuditForward(tampered)
		if err != nil {
			panic(err)
		}
		fmt.Printf("E=2 audit with culprit %d: identified %v\n", culprit, found)
	}
	fmt.Println("\nwith E=1 tampering is detectable; E=2 makes it attributable")
}
