// Collusion tolerance: the §4.5/§5 scenario. Build codes with growing M,
// let coalitions of GPUs pool everything they received, and show that any
// coalition of size <= M learns nothing (full-rank noise, uniform views)
// while a coalition of M+1 finds a noise-cancelling combination.
package main

import (
	"fmt"
	"math/rand"

	"darknight/internal/field"
	"darknight/internal/masking"
)

func main() {
	rng := rand.New(rand.NewSource(31))
	const n = 64 // vector length (a small "image")

	for _, m := range []int{1, 2, 3} {
		params := masking.Params{K: 3, M: m}
		code, err := masking.New(params, rng)
		if err != nil {
			panic(err)
		}
		inputs := make([]field.Vec, params.K)
		for i := range inputs {
			inputs[i] = field.RandVec(rng, n)
		}
		coded, err := code.Encode(inputs, rng)
		if err != nil {
			panic(err)
		}
		fmt.Printf("M=%d: %d coded inputs on %d GPUs (K'=K+M)\n", m, len(coded), params.GPUs())

		// Every coalition up to size M is provably blind.
		safe := code.MaxSafeCoalition()
		fmt.Printf("  largest provably-safe coalition: %d (tolerance M=%d)\n", safe, m)

		// Concretely: an M-coalition's noise block is full rank — no
		// linear combination of their views cancels the noise.
		coalition := make([]int, m)
		for i := range coalition {
			coalition[i] = i
		}
		view, err := code.View(coalition)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  coalition %v: noise rank %d/%d, leaks=%v\n",
			coalition, view.NoiseRank(), m, view.Leaks())

		// An (M+1)-coalition can cancel the noise: privacy is gone, which
		// is why the paper sizes clusters as K' >= K+M+1.
		over := append(append([]int(nil), coalition...), m)
		overView, err := code.View(over)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  coalition %v: leaks=%v  <- one conspirator too many\n\n",
			over, overView.Leaks())
	}
}
