package darknight

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"darknight/internal/obs"
)

// TestServerObservabilityEndToEnd: the facade knob stands up the whole
// stack — traced requests, a live /metrics listener whose scrape parses,
// and a flight recorder — and Close tears the listener down.
func TestServerObservabilityEndToEnd(t *testing.T) {
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config:  Config{VirtualBatch: 2, Seed: 1, EnclaveBytes: -1},
		Workers: 1,
		MaxWait: time.Millisecond,
		Observability: ObservabilityConfig{
			MetricsAddr: "127.0.0.1:0",
			TraceSample: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Observability() == nil {
		t.Fatal("observability not attached")
	}
	addr := srv.MetricsAddr()
	if addr == "" {
		t.Fatal("metrics listener not bound")
	}

	data := SyntheticDataset(8, 4, 1, 8, 8, 2)
	for _, ex := range data {
		if _, err := srv.Infer(context.Background(), ex.Image); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics scrape does not parse: %v", err)
	}
	if parsed["darknight_requests_completed_total"] != float64(len(data)) {
		t.Fatalf("scrape shows %v completed, want %d", parsed["darknight_requests_completed_total"], len(data))
	}

	traces := srv.RecentTraces()
	if len(traces) == 0 {
		t.Fatal("no traces retained at 100% sampling")
	}
	if traces[len(traces)-1].Find("offload") == nil && traces[len(traces)-1].Find("admit") == nil {
		t.Fatalf("trace missing expected spans:\n%s", traces[len(traces)-1].RenderString())
	}
	if events := srv.FlightRecorderDump(); len(events) == 0 {
		t.Fatal("flight recorder empty after traced serving")
	}
	var b strings.Builder
	if err := srv.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}

	srv.Close()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics listener still serving after Close")
	}
}

// TestSystemTraceAndMetrics: Config.Observability wires the training
// path — TrainBatch yields a span tree via System.Trace and the training
// series export.
func TestSystemTraceAndMetrics(t *testing.T) {
	model := TinyCNN(1, 8, 8, 4, 1)
	sys, err := NewSystem(model, Config{
		VirtualBatch:  2,
		Seed:          1,
		Observability: ObservabilityConfig{TraceSample: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if sys.Trace() != nil {
		t.Fatal("trace before any work")
	}
	data := SyntheticDataset(4, 4, 1, 8, 8, 2)
	if _, err := sys.TrainBatch(data); err != nil {
		t.Fatal(err)
	}
	tr := sys.Trace()
	if tr == nil {
		t.Fatal("no trace after traced TrainBatch")
	}
	if tr.Find("offload") == nil {
		t.Fatalf("training trace has no offload spans:\n%s", tr.RenderString())
	}
	var b strings.Builder
	if err := sys.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	parsed, err := obs.ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("training metrics do not parse: %v", err)
	}
	if parsed["darknight_train_offloads_total"] <= 0 {
		t.Fatal("train offloads not exported")
	}
}

// TestObservabilityConfigDisabledByDefault: the zero config attaches
// nothing — no bundle, no listener, nil-safe accessors.
func TestObservabilityConfigDisabledByDefault(t *testing.T) {
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 1) }, ServerConfig{
		Config:  Config{VirtualBatch: 2, Seed: 1, EnclaveBytes: -1},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Observability() != nil || srv.MetricsAddr() != "" {
		t.Fatal("zero config attached observability")
	}
	if srv.RecentTraces() != nil || srv.FlightRecorderDump() != nil {
		t.Fatal("zero config retained traces/events")
	}
	if err := srv.WriteMetrics(io.Discard); err == nil {
		t.Fatal("WriteMetrics without a registry should error")
	}
}
