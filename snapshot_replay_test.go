package darknight

import (
	"context"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"darknight/internal/gpu"
)

// chaosServerConfig is the chaos incident the snapshot-to-replay
// acceptance gates: a tampering device corrupting every third job
// (audit-and-recover quarantines it mid-serving) plus a 2ms straggler
// covered by quorum slack.
func chaosServerConfig() ServerConfig {
	return ServerConfig{
		Config: Config{
			VirtualBatch: 2,
			Collusion:    1,
			// Straggler-quorum decode spends one redundant equation on the
			// slack; attribution of a single culprit needs two live checks,
			// so the chaos geometry carries E=3.
			Redundancy:    3,
			Seed:          7,
			EnclaveBytes:  -1,
			MaliciousGPUs: []int{2},
			FaultPolicy:   gpu.FaultPolicy{EveryNth: 3},
			SlowGPUs:      []int{4},
			SlowDelay:     2 * time.Millisecond,
		},
		Arch:           "tiny",
		Workers:        1,
		MaxWait:        time.Millisecond,
		SpareGPUs:      2,
		Recover:        true,
		StragglerSlack: 1,
		Tenants:        []Tenant{{Name: "gold", Weight: 3}, {Name: "bronze", Weight: 1}},
		Observability: ObservabilityConfig{
			Enabled:            true,
			FlightRecorderSize: 4096,
		},
	}
}

// driveChaos pushes n requests per tenant through the server.
func driveChaos(t *testing.T, srv *Server, n int) {
	t.Helper()
	data := SyntheticDataset(16, 4, 1, 8, 8, 99)
	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "bronze"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				// Recovery absorbs the tampering, so errors are unexpected.
				if _, err := srv.InferAs(context.Background(), tenant, data[i%len(data)].Image); err != nil {
					t.Errorf("tenant %s request %d: %v", tenant, i, err)
					return
				}
			}
		}(tenant)
	}
	wg.Wait()
}

// TestSnapshotReplayChaosDeterminism is the PR 8 acceptance test: a chaos
// incident — mid-flight quarantine of a tampering device plus
// straggler-quorum decode — captured live must replay deterministically:
// bit-identical decoded classes, identical culprit attributions, and the
// same quarantine event sequence. The replay model is rebuilt from the
// snapshot's recorded arch + seed alone and verified by weight hash.
func TestSnapshotReplayChaosDeterminism(t *testing.T) {
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 7) }, chaosServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveChaos(t, srv, 12)

	snap, err := srv.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := snap.Validate(); err != nil {
		t.Fatalf("live snapshot inconsistent: %v", err)
	}
	if len(snap.Batches) == 0 {
		t.Fatal("batch log empty — nothing to replay")
	}
	if snap.Fleet.QuarantineEvents == 0 {
		t.Fatal("chaos did not quarantine the tampering device — incident too tame to gate replay")
	}
	if snap.Model.Arch != "tiny" || snap.Model.WeightHash == "" {
		t.Fatalf("model identity not captured: %+v", snap.Model)
	}
	if len(snap.Cluster.Malicious) != 1 || snap.Cluster.Malicious[0].EveryNth != 3 {
		t.Fatalf("fault policy not captured: %+v", snap.Cluster)
	}
	if len(snap.Cluster.Slow) != 1 || snap.Cluster.Slow[0].DelayNs != int64(2*time.Millisecond) {
		t.Fatalf("straggler delay not captured: %+v", snap.Cluster)
	}

	path := filepath.Join(t.TempDir(), "incident.json")
	if err := SaveSnapshot(snap, path); err != nil {
		t.Fatal(err)
	}

	// nil model: replay rebuilds tiny/seed 7 from the registry, then the
	// weight hash proves it reconstructed the served weights exactly.
	rep := ReplaySnapshot(t, path, nil)
	if rep.Matched != rep.Batches {
		t.Fatalf("only %d/%d batches matched", rep.Matched, rep.Batches)
	}
	if !rep.EventsCompared {
		t.Fatal("event window incomplete — the determinism gate did not actually compare event sequences")
	}
	if len(rep.QuarantineReplay) == 0 {
		t.Fatal("replay produced no quarantines — fault schedule did not reproduce")
	}
}

// SaveSnapshot is exercised via the facade; LoadSnapshot mismatch paths
// are covered here: replaying against the wrong model must fail the hash
// check rather than diverge silently.
func TestReplayRejectsWrongModel(t *testing.T) {
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 7) }, chaosServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveChaos(t, srv, 4)
	snap, err := srv.CaptureSnapshot()
	srv.Close()
	if err != nil {
		t.Fatal(err)
	}
	wrong := TinyCNN(1, 8, 8, 4, 8) // different seed, different weights
	if _, err := Replay(snap, wrong, ReplayOptions{}); err == nil {
		t.Fatal("replay accepted a model with mismatched weights")
	}
}

// TestSnapshotEndpoint: the /snapshot HTTP surface serves a validating,
// replayable capture from a live server.
func TestSnapshotEndpoint(t *testing.T) {
	cfg := chaosServerConfig()
	cfg.Observability.MetricsAddr = "127.0.0.1:0"
	cfg.Observability.SnapshotWeights = true
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 7) }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	driveChaos(t, srv, 4)

	resp, err := http.Get("http://" + srv.MetricsAddr() + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/snapshot status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/snapshot Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatalf("/snapshot body does not validate: %v", err)
	}
	if len(snap.Model.Weights) == 0 {
		t.Fatal("SnapshotWeights did not embed weights")
	}
	// Self-contained capture: replay straight from the endpoint payload,
	// weights restored from the snapshot itself.
	rep := ReplaySnapshot(t, path, TinyCNN(1, 8, 8, 4, 12345)) // wrong seed on purpose
	if rep.Matched != rep.Batches {
		t.Fatalf("embedded-weight replay matched %d/%d", rep.Matched, rep.Batches)
	}
}

// TestConcurrentSnapshotCapture hammers CaptureSnapshot from a background
// goroutine while serving traffic is quarantining a tamperer mid-flight —
// run under -race in CI. Every capture must be internally consistent:
// grant counts match lane occupancy, fault scores in bounds, event window
// ordered (all enforced by Validate).
func TestConcurrentSnapshotCapture(t *testing.T) {
	srv, err := NewServer(func() *Model { return TinyCNN(1, 8, 8, 4, 7) }, chaosServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	captures := 0
	var capErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap, err := srv.CaptureSnapshot()
			if err == nil {
				err = snap.Validate()
			}
			if err != nil {
				capErr = err
				return
			}
			captures++
		}
	}()

	driveChaos(t, srv, 16)
	close(stop)
	wg.Wait()
	if capErr != nil {
		t.Fatalf("mid-serving capture inconsistent: %v", capErr)
	}
	if captures == 0 {
		t.Fatal("no snapshots captured during serving")
	}
	if srv.FleetStats().QuarantineEvents == 0 {
		t.Fatal("no mid-flight quarantine happened — the race test lost its chaos")
	}
}
