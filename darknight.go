// Package darknight is a from-scratch reproduction of "DarKnight: An
// Accelerated Framework for Privacy and Integrity Preserving Deep Learning
// Using Trusted Hardware" (MICRO 2021).
//
// DarKnight trains and serves DNNs on untrusted GPUs while raw inputs stay
// visible only inside a trusted execution environment: the TEE linearly
// combines K private inputs with M uniform noise vectors over the prime
// field F_p (matrix masking), offloads the bilinear heavy lifting on the
// coded data, and decodes the exact results. One redundant equation makes
// tampered GPU results detectable.
//
// This package is the public facade over the internal subsystems (masking
// code, software enclave, simulated GPU cluster, DNN framework, analytic
// performance model). See DESIGN.md for the architecture and EXPERIMENTS.md
// for the paper-artifact reproduction index.
//
//	model := darknight.TinyCNN(3, 32, 32, 10, 1)
//	sys, _ := darknight.NewSystem(model, darknight.Config{VirtualBatch: 2})
//	loss, _ := sys.TrainBatch(batch)
package darknight

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"darknight/internal/dataset"
	"darknight/internal/enclave"
	"darknight/internal/fleet"
	"darknight/internal/gpu"
	"darknight/internal/masking"
	"darknight/internal/nn"
	"darknight/internal/obs"
	"darknight/internal/sched"
)

// Config selects the privacy/integrity operating point of a System.
type Config struct {
	// VirtualBatch is K: how many private inputs are coded together.
	VirtualBatch int
	// Collusion is M: the tolerated size of a GPU coalition (default 1).
	Collusion int
	// Redundancy is E: extra coded inputs for integrity verification
	// (0 = off, 1 = the paper's scheme).
	Redundancy int
	// GPUs is the cluster size K'; 0 sizes it minimally (K+M+E).
	GPUs int
	// MaliciousGPUs marks device indices that corrupt results — used to
	// demonstrate integrity detection and fleet quarantine.
	MaliciousGPUs []int
	// FaultPolicy overrides how MaliciousGPUs corrupt (zero value picks
	// corrupt-every-result). The probabilistic mode with a Seed gives
	// reproducible fault injection.
	FaultPolicy gpu.FaultPolicy
	// SlowGPUs marks device indices that answer late by SlowDelay —
	// deterministic stragglers for quorum/speculation experiments.
	SlowGPUs []int
	// SlowDelay is the added latency of SlowGPUs (default 5ms when
	// SlowGPUs is set).
	SlowDelay time.Duration
	// EnclaveBytes bounds the software enclave's protected memory;
	// 0 selects the SGX default (~93 MB usable), negative disables
	// memory accounting.
	EnclaveBytes int64
	// LearningRate and Momentum drive the SGD optimizer.
	LearningRate, Momentum float64
	// TrainPipelineDepth >= 2 switches TrainBatch to overlapped
	// data-parallel execution: up to that many virtual batches ride the
	// encode→dispatch→decode stages of both passes at once, each on its
	// own device gang, with per-lane gradient isolation and
	// virtual-batch-order Algorithm-2 aggregation — weights bit-identical
	// to the serial trainer. <= 1 keeps the serial trainer. With GPUs = 0
	// the cluster is sized depth × (K+M+E) + SpareGPUs so the overlap is
	// not starved of devices.
	TrainPipelineDepth int
	// ManagedFleet routes training dispatch through a self-healing
	// fleet.Manager — per-batch gang grants, health tracking, quarantine of
	// attributed tamperers, straggler accounting — instead of the raw
	// cluster. Requires TrainPipelineDepth >= 2.
	ManagedFleet bool
	// SpareGPUs adds devices beyond the gang sizing — headroom for
	// quarantine survival under a managed fleet.
	SpareGPUs int
	// StragglerSlack lets a forward dispatch decode after all but this many
	// coded responses arrive, and arms the backward dual-window quorum
	// (decode from the primary or the redundant equation set, whichever
	// completes first). Needs Redundancy >= 2 for the forward path and
	// >= 1 for the backward window — and ManagedFleet: quorum dispatch is
	// a fleet-grant capability, so on a raw cluster this knob is inert
	// (every dispatch waits for all devices).
	StragglerSlack int
	// SlowAll marks every device slow by SlowDelay — the uniform
	// per-dispatch device-latency regime pipelined training hides.
	SlowAll bool
	// Observability switches on training-path tracing, the exportable
	// metrics registry, and the chaos flight recorder. Zero value = off,
	// and the hot path stays at its untraced cost.
	Observability ObservabilityConfig
	// Chaos wraps every device with a runtime fault-injection actuator
	// (gpu.ChaosDevice): crashes, latency spikes, tamper bursts and
	// flapping can then be scripted against a live deployment with a chaos
	// schedule (Server.PlayChaos). The wrappers are inert until a schedule
	// flips them, so a clean run costs three atomic loads per dispatch.
	Chaos bool
	// Seed drives all randomness.
	Seed int64
}

// Example is one labelled image (CHW layout).
type Example = dataset.Example

// System owns a model, a masked trainer (serial and optionally pipelined),
// a software enclave and a simulated GPU cluster — optionally under
// self-healing fleet management.
type System struct {
	model   *nn.Model
	trainer *sched.Trainer
	pipe    *sched.TrainPipeline
	src     sched.GangSource
	fm      *fleet.Manager
	encl    *enclave.Enclave
	cluster *gpu.Cluster
	opt     *nn.SGD
	obs     *obs.Observability
	msrv    *obs.MetricsServer
	cfg     Config
}

// NewSystem wires a DarKnight deployment around a model.
func NewSystem(model *Model, cfg Config) (*System, error) {
	if cfg.VirtualBatch == 0 {
		cfg.VirtualBatch = 2
	}
	if cfg.Collusion == 0 {
		cfg.Collusion = 1
	}
	gang := cfg.VirtualBatch + cfg.Collusion + cfg.Redundancy
	if cfg.GPUs == 0 {
		// Pipelined lanes each hold a gang in flight; size the default
		// cluster so the overlap is not starved of devices.
		lanes := 1
		if cfg.TrainPipelineDepth >= 2 {
			lanes = cfg.TrainPipelineDepth
		}
		cfg.GPUs = gang*lanes + cfg.SpareGPUs
	}
	if cfg.LearningRate == 0 {
		cfg.LearningRate = 0.05
	}
	if cfg.ManagedFleet && cfg.TrainPipelineDepth < 2 {
		return nil, fmt.Errorf("darknight: ManagedFleet training requires TrainPipelineDepth >= 2")
	}
	if cfg.SlowAll {
		cfg.SlowGPUs = make([]int, cfg.GPUs)
		for i := range cfg.SlowGPUs {
			cfg.SlowGPUs[i] = i
		}
	}

	cluster, _, err := buildCluster(cfg)
	if err != nil {
		return nil, err
	}
	encl, err := buildEnclave(cfg)
	if err != nil {
		return nil, err
	}

	scfg := sched.Config{
		VirtualBatch:   cfg.VirtualBatch,
		Collusion:      cfg.Collusion,
		Redundancy:     cfg.Redundancy,
		StragglerSlack: cfg.StragglerSlack,
		Seed:           cfg.Seed,
	}
	trainer, err := sched.NewTrainer(scfg, model.m, cluster, encl)
	if err != nil {
		return nil, err
	}
	s := &System{
		model:   model.m,
		trainer: trainer,
		encl:    encl,
		cluster: cluster,
		opt:     nn.NewSGD(cfg.LearningRate, cfg.Momentum),
		cfg:     cfg,
	}
	if cfg.TrainPipelineDepth >= 2 {
		s.pipe, err = sched.NewTrainPipeline(scfg, model.m, encl, "sys/", cfg.TrainPipelineDepth)
		if err != nil {
			return nil, err
		}
		if cfg.ManagedFleet {
			s.fm = fleet.NewManager(cluster, fleet.Config{Seed: cfg.Seed})
			s.src = &trainGangSource{m: s.fm, gang: gang}
		} else {
			s.src = sched.SingleFleetSource{F: cluster}
		}
	}
	if ob := cfg.Observability.build(cfg.Seed); ob != nil {
		s.obs = ob
		s.trainer.SetTracer(ob.Tracer)
		s.trainer.SetObserver(ob.Recorder)
		if s.pipe != nil {
			s.pipe.SetTracer(ob.Tracer)
			s.pipe.SetObserver(ob.Recorder)
		}
		if s.fm != nil {
			s.fm.SetObserver(ob.Recorder)
			s.fm.RegisterMetrics(ob.Registry)
		}
		s.registerMetrics(ob.Registry)
		if addr := cfg.Observability.MetricsAddr; addr != "" {
			s.msrv, err = ob.Serve(addr)
			if err != nil {
				s.Close()
				return nil, err
			}
		}
	}
	return s, nil
}

// registerMetrics exports the training-path counters as scrape-time
// closures: phase breakdown, offload count, cache refills, noise-pool
// hit/miss accounting.
func (s *System) registerMetrics(r *obs.Registry) {
	r.SampleFunc("darknight_train_phase_seconds_total",
		"Cumulative TEE-side time by phase across training offloads.", "counter",
		func() []obs.Sample {
			ph := s.TrainPhases()
			return []obs.Sample{
				{Labels: map[string]string{"phase": "encode"}, Value: ph.Encode.Seconds()},
				{Labels: map[string]string{"phase": "dispatch"}, Value: ph.Dispatch.Seconds()},
				{Labels: map[string]string{"phase": "decode"}, Value: ph.Decode.Seconds()},
				{Labels: map[string]string{"phase": "wall"}, Value: ph.Wall.Seconds()},
			}
		})
	r.CounterFunc("darknight_train_offloads_total",
		"Bilinear-layer offload dispatches on the training path.",
		func() float64 { return float64(s.TrainPhases().Offloads) })
	r.CounterFunc("darknight_train_cache_refills_total",
		"Backward dispatches that re-created the device-side coded-input cache.",
		func() float64 { return float64(s.CacheRefills()) })
	r.CounterFunc("darknight_noisepool_hits_total",
		"Encodes served from precomputed noise material.",
		func() float64 { return float64(s.poolStats().Hits) })
	r.CounterFunc("darknight_noisepool_misses_total",
		"Encodes that found the noise ring empty and drew inline.",
		func() float64 { return float64(s.poolStats().Misses) })
	r.GaugeFunc("darknight_noisepool_fallbacks",
		"Current count of inline-RNG fallbacks — nonzero and growing means the pool is undersized.",
		func() float64 { return float64(s.poolStats().Misses) })
}

// poolStats returns the training pipeline's noise-pool counters (zero when
// the serial trainer runs without a pool).
func (s *System) poolStats() masking.NoisePoolStats {
	if s.pipe == nil {
		return masking.NoisePoolStats{}
	}
	return s.pipe.PoolStats()
}

// trainGangSource adapts a fleet.Manager into the training pipeline's
// per-batch gang supply: every in-flight virtual batch runs on its own
// granted gang, and each batch's integrity verdict feeds device health on
// release (attributed culprits quarantine; unattributable violations cast
// gang-wide suspicion).
type trainGangSource struct {
	m    *fleet.Manager
	gang int
}

func (s *trainGangSource) Acquire() (sched.Fleet, error) {
	return s.m.Acquire(context.Background(), "train", s.gang)
}

func (s *trainGangSource) Release(f sched.Fleet, culprits []int, err error) {
	g := f.(*fleet.Grant)
	var ie *sched.IntegrityError
	switch {
	case len(culprits) > 0:
		g.ReportFaults(culprits)
	case errors.As(err, &ie) && len(ie.Culprits) > 0:
		g.ReportFaults(ie.Culprits)
	case err != nil && errors.Is(err, masking.ErrIntegrity):
		g.ReportSuspect()
	}
	g.Release()
}

// buildCluster assembles the simulated device fleet a Config describes,
// wrapping the marked indices with fault policies and straggler delays.
// With cfg.Chaos every device is additionally wrapped (outermost) in a
// runtime fault-injection actuator; the returned slice holds the handles a
// chaos runner drives, index = device id (nil without Chaos).
func buildCluster(cfg Config) (*gpu.Cluster, []*gpu.ChaosDevice, error) {
	devs := make([]gpu.Device, cfg.GPUs)
	for i := range devs {
		devs[i] = gpu.NewHonest(i)
	}
	policy := cfg.FaultPolicy
	if policy.EveryNth == 0 && policy.Probability == 0 {
		policy = gpu.FaultPolicy{EveryNth: 1}
	}
	for _, idx := range cfg.MaliciousGPUs {
		if idx < 0 || idx >= len(devs) {
			return nil, nil, fmt.Errorf("darknight: malicious GPU index %d outside cluster of %d", idx, len(devs))
		}
		devs[idx] = gpu.NewMalicious(devs[idx], policy)
	}
	delay := cfg.SlowDelay
	if delay == 0 {
		delay = 5 * time.Millisecond
	}
	for _, idx := range cfg.SlowGPUs {
		if idx < 0 || idx >= len(devs) {
			return nil, nil, fmt.Errorf("darknight: slow GPU index %d outside cluster of %d", idx, len(devs))
		}
		devs[idx] = gpu.NewSlow(devs[idx], delay)
	}
	var chaos []*gpu.ChaosDevice
	if cfg.Chaos {
		chaos = make([]*gpu.ChaosDevice, len(devs))
		for i := range devs {
			cd := gpu.NewChaos(devs[i])
			chaos[i] = cd
			devs[i] = cd
		}
	}
	return gpu.NewCluster(devs...), chaos, nil
}

// buildEnclave creates the software enclave a Config asks for (nil when
// memory accounting is disabled).
func buildEnclave(cfg Config) (*enclave.Enclave, error) {
	if cfg.EnclaveBytes < 0 {
		return nil, nil
	}
	cap := cfg.EnclaveBytes
	if cap == 0 {
		cap = enclave.DefaultEPCBytes
	}
	return enclave.New(cap)
}

// AggregationStats reports what Algorithm 2 did for one large batch,
// including the tail examples dropped by the K-granularity constraint.
type AggregationStats = sched.AggregationStats

// TrainPhaseStats is the cumulative encode/dispatch/decode/wall breakdown
// of the training hot path; Overlap() on it is the pipelining win.
type TrainPhaseStats = sched.PhaseStats

// TrainBatch runs one private training step over a batch (processed as
// virtual batches of K with Algorithm 2 aggregation) and returns the mean
// loss. With TrainPipelineDepth >= 2 the virtual batches are pipelined
// data-parallel across device gangs — same weights, bit for bit. It fails
// with an integrity error if GPU results were tampered with and
// Redundancy >= 1.
func (s *System) TrainBatch(batch []Example) (float64, error) {
	loss, _, err := s.TrainBatchStats(batch)
	return loss, err
}

// TrainBatchStats is TrainBatch surfacing the Algorithm-2 aggregation
// stats — most notably DroppedExamples, the tail examples beyond the last
// full virtual batch that the coded path cannot process (size batches as
// multiples of K to avoid dropping data).
func (s *System) TrainBatchStats(batch []Example) (float64, AggregationStats, error) {
	if s.pipe != nil {
		return s.pipe.TrainLargeBatch(s.src, batch, s.opt, 0)
	}
	return s.trainer.TrainLargeBatch(batch, s.opt, 0)
}

// TrainPhases returns the training path's phase breakdown: the pipeline's
// aggregate when pipelining is on, the serial trainer's otherwise.
func (s *System) TrainPhases() TrainPhaseStats {
	if s.pipe != nil {
		return s.pipe.PhaseStats()
	}
	return s.trainer.PhaseStats()
}

// CacheRefills counts backward dispatches that had to re-create the
// device-side coded-input cache (devices replaced or reshuffled between a
// batch's forward and backward passes — quarantines, probation swaps).
func (s *System) CacheRefills() int64 {
	if s.pipe != nil {
		return s.pipe.CacheRefills()
	}
	return s.trainer.CacheRefills()
}

// FleetStats returns the training fleet's health snapshot (zero value when
// ManagedFleet is off).
func (s *System) FleetStats() FleetStats {
	if s.fm == nil {
		return FleetStats{}
	}
	return s.fm.Stats()
}

// Close stops the training pipeline's background noise generator, if one
// is running, and the metrics listener, if one is serving. The System
// remains usable for serial work.
func (s *System) Close() {
	s.msrv.Close()
	if s.pipe != nil {
		s.pipe.Close()
	}
}

// Predict privately classifies a virtual batch of exactly K images.
func (s *System) Predict(images [][]float64) ([]int, error) {
	return s.trainer.Predict(images)
}

// Evaluate computes top-1 accuracy with the plain (non-masked) forward
// pass; evaluation data is assumed non-sensitive.
func (s *System) Evaluate(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if nn.Argmax(s.model.Forward(ex.Image, false)) == ex.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}

// EnclaveStats returns sealing/paging counters (zero value if accounting
// is disabled).
func (s *System) EnclaveStats() enclave.Stats {
	if s.encl == nil {
		return enclave.Stats{}
	}
	return s.encl.Stats()
}

// GPUTraffic returns the cluster's total TEE<->GPU channel usage.
func (s *System) GPUTraffic() gpu.Traffic { return s.cluster.TotalTraffic() }

// Model wraps a trainable network.
type Model struct{ m *nn.Model }

// Name returns the architecture name.
func (m *Model) Name() string { return m.m.Name }

// ParamCount returns the learnable element count.
func (m *Model) ParamCount() int64 { return m.m.ParamCount() }

// Weights returns a flat copy of the model's learnable parameters in
// declaration order — for checkpoint comparison (the pipelined trainer's
// bit-identity guarantee is checked against it).
func (m *Model) Weights() []float64 {
	var out []float64
	for _, p := range m.m.Params() {
		out = append(out, p.W.Data...)
	}
	return out
}

// CopyWeightsFrom copies the learned parameters of src into m. The two
// models must share an architecture (same constructor and scale). It is how
// trained weights are propagated into a serving fleet's per-worker model
// replicas.
func (m *Model) CopyWeightsFrom(src *Model) error {
	dst, from := m.m.Params(), src.m.Params()
	if len(dst) != len(from) {
		return fmt.Errorf("darknight: architectures differ: %d vs %d param tensors", len(dst), len(from))
	}
	for i := range dst {
		if dst[i].W.Size() != from[i].W.Size() {
			return fmt.Errorf("darknight: param %q: size %d vs %d", dst[i].Name, dst[i].W.Size(), from[i].W.Size())
		}
		copy(dst[i].W.Data, from[i].W.Data)
	}
	return nil
}

// TinyCNN builds the smallest useful CNN (quickstart-scale).
func TinyCNN(c, h, w, classes int, seed int64) *Model {
	return &Model{m: nn.TinyCNN(c, h, w, classes, rand.New(rand.NewSource(seed)))}
}

// VGG16 builds a width-scaled VGG16-style model.
func VGG16(c, h, w, classes, width int, seed int64) *Model {
	return &Model{m: nn.VGG16Scaled(c, h, w, classes, width, rand.New(rand.NewSource(seed)))}
}

// ResNet50 builds a width-scaled ResNet-style model with bottleneck
// residual blocks and batch normalization.
func ResNet50(c, h, w, classes, width int, seed int64) *Model {
	return &Model{m: nn.ResNet50Scaled(c, h, w, classes, width, rand.New(rand.NewSource(seed)))}
}

// MobileNetV2 builds a width-scaled MobileNetV2-style model with inverted
// residuals and depthwise convolutions.
func MobileNetV2(c, h, w, classes, width int, seed int64) *Model {
	return &Model{m: nn.MobileNetV2Scaled(c, h, w, classes, width, rand.New(rand.NewSource(seed)))}
}

// DeepMLP builds a factorized deep MLP whose back-to-back Dense runs make
// it the fused-offload showcase: with ServerConfig.Fuse (or
// sched.Config.FuseBlocks) each 3-layer Dense stack rides one gang flight,
// so a forward pass costs 3 flights instead of 7.
func DeepMLP(c, h, w, classes, width int, seed int64) *Model {
	return &Model{m: nn.DeepMLP(c, h, w, classes, width, rand.New(rand.NewSource(seed)))}
}

// SyntheticDataset generates a learnable labelled image set (the synthetic
// CIFAR substitution documented in DESIGN.md).
func SyntheticDataset(n, classes, c, h, w int, seed int64) []Example {
	d := dataset.SyntheticCIFAR(rand.New(rand.NewSource(seed)), n, classes, c, h, w, 0.05)
	return d.Items
}
